package core

import (
	"sort"

	"sacsearch/internal/graph"
)

// Prefix-feasibility oracle. The binary searches of AppInc/AppFast/AppAcc
// probe "does the distance-prefix X[:i] contain a connected k-core with q?"
// over nested prefixes of one sorted candidate view. Maximal-k-core
// membership is monotone in the prefix (core(X[:i]) ⊆ core(X[:j]) for
// i ≤ j), so a single reverse-deletion sweep over the cached community's
// induced adjacency answers EVERY prefix probe at once:
//
//   - coreAt[v]: the smallest i with v ∈ core(X[:i]) — computed by deleting
//     vertices farthest-first and cascading the k-core peel; each vertex
//     dies exactly once, so the sweep is O(E_induced).
//   - joinAt[v]: the smallest i with v in q's connected component of
//     core(X[:i]) — computed by activating vertices in ascending coreAt
//     order under a union-find and stamping sets the moment they merge with
//     q's set; each vertex is stamped once, so this is O(E α(n)).
//
// A probe at prefix i then reduces to one binary search: infeasible iff
// i < joinAt[q], otherwise the community is the joinAt-ascending vertex
// list truncated at i. Repeated queries into a cached community skip the
// per-probe peeling entirely — the payoff of candidate caching beyond
// skipping the BFS.
//
// The oracle is exact, not approximate: its answers equal
// kcore.Peeler.KCoreWithin on the same prefix (as sets; callers never
// depend on member order). It applies only to the k-core structure metric
// and only to probes whose S is literally a prefix of the current sorted
// view; everything else (circle subsets, θ-SAC, k-truss/k-clique) takes the
// generic peelers.
type prefixOracle struct {
	built       bool
	minFeasible int32     // joinAt[q]: smallest feasible prefix length
	comm        []graph.V // q's community members in ascending joinAt order
	joinAt      []int32   // parallel to comm, ascending
}

// prefixFeasible answers feasible(view.verts[:i], q, k) via the oracle,
// building it on first use. The returned slice is oracle-owned; callers
// that retain it must copy (they already must, for every feasible path).
func (s *Searcher) prefixFeasible(e *cacheEntry, vw *sortedView, i int, q graph.V, k int) []graph.V {
	if !vw.oracle.built {
		s.buildPrefixOracle(e, vw, q, k)
	}
	o := &vw.oracle
	if int32(i) < o.minFeasible {
		return nil
	}
	cnt := sort.Search(len(o.joinAt), func(j int) bool { return o.joinAt[j] > int32(i) })
	return o.comm[:cnt]
}

// buildPrefixOracle runs the reverse-deletion sweep and the union-find
// joining pass for (vw, k). Runs once per view per location epoch; cost is
// O(E_induced + n α(n)).
func (s *Searcher) buildPrefixOracle(e *cacheEntry, vw *sortedView, q graph.V, k int) {
	if e.adjOff == nil {
		e.buildInduced(s.g, s.localOf, s.localValid)
	}
	n := len(vw.verts)
	o := &vw.oracle
	o.built = true
	o.comm = o.comm[:0]
	o.joinAt = o.joinAt[:0]

	// localAt[pos] = local id of the vertex at sorted position pos.
	localAt := make([]int32, n)
	for pos, v := range vw.verts {
		localAt[pos] = s.localOf[v]
	}

	// Reverse deletion: coreAt[lv] = smallest prefix length whose maximal
	// k-core contains lv. The full set is the connected k-ĉore, so every
	// vertex starts with induced degree ≥ k and alive.
	deg := make([]int32, n)
	for lv := 0; lv < n; lv++ {
		deg[lv] = e.adjOff[lv+1] - e.adjOff[lv]
	}
	coreAt := make([]int32, n)
	removed := make([]bool, n)
	stack := make([]int32, 0, n)
	for i := n; i >= 1; i-- {
		w := localAt[i-1]
		if removed[w] {
			continue
		}
		// Deleting position i-1 shrinks the prefix below i: w dies here, and
		// so does everything its removal cascades.
		stack = append(stack[:0], w)
		removed[w] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			coreAt[x] = int32(i)
			for _, y := range e.adjLocal[e.adjOff[x]:e.adjOff[x+1]] {
				if removed[y] {
					continue
				}
				deg[y]--
				if deg[y] == int32(k)-1 {
					removed[y] = true
					stack = append(stack, y)
				}
			}
		}
	}

	// Forward joining pass: activate vertices in ascending coreAt (position
	// order breaks ties deterministically), union with active neighbors, and
	// stamp a set's members the moment it merges with q's set.
	qLocal := s.localOf[q]
	actOrder := make([]int32, n)
	for pos := range actOrder {
		actOrder[pos] = localAt[pos]
	}
	sort.SliceStable(actOrder, func(a, b int) bool { return coreAt[actOrder[a]] < coreAt[actOrder[b]] })

	parent := make([]int32, n)
	size := make([]int32, n)
	hasQ := make([]bool, n)
	head := make([]int32, n) // member-list head per root
	next := make([]int32, n) // member-list links
	tail := make([]int32, n)
	active := removed        // reuse: reset to false = inactive
	joined := make([]int32, n)
	for lv := 0; lv < n; lv++ {
		active[lv] = false
		parent[lv] = int32(lv)
		size[lv] = 1
		head[lv] = int32(lv)
		tail[lv] = int32(lv)
		next[lv] = -1
		joined[lv] = -1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	stamp := func(root, at int32) {
		for m := head[root]; m >= 0; m = next[m] {
			joined[m] = at
		}
	}
	union := func(a, b, at int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if hasQ[ra] {
			stamp(rb, at)
		} else if hasQ[rb] {
			stamp(ra, at)
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
		hasQ[ra] = hasQ[ra] || hasQ[rb]
		next[tail[ra]] = head[rb]
		tail[ra] = tail[rb]
	}
	for _, lv := range actOrder {
		at := coreAt[lv]
		active[lv] = true
		if lv == qLocal {
			hasQ[lv] = true
			joined[lv] = at
			// Everything already merged into q's singleton-to-be cannot
			// exist: q activates alone, neighbors union below.
		}
		for _, lu := range e.adjLocal[e.adjOff[lv]:e.adjOff[lv+1]] {
			if active[lu] && coreAt[lu] <= at {
				union(lv, lu, at)
			}
		}
	}

	// Emit q's community in ascending join order. Every member joins by
	// prefix n (the full set is connected), so joined is set for all of
	// q's final component; vertices outside it keep joined = -1 — they are
	// never in any feasible prefix answer... they ARE in the k-core for
	// large prefixes but not in q's component, which is exactly what
	// KCoreWithin excludes.
	o.minFeasible = joined[qLocal]
	idx := make([]int32, 0, n)
	for lv := int32(0); lv < int32(n); lv++ {
		if joined[lv] >= 0 {
			idx = append(idx, lv)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return joined[idx[a]] < joined[idx[b]] })
	for _, lv := range idx {
		o.comm = append(o.comm, e.members[lv])
		o.joinAt = append(o.joinAt, joined[lv])
	}
}
