package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"sacsearch/client"
	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
)

// legFailure marks an error as coming from one shard's leg of a fan-out,
// so the handler layer can name the shard in its envelope.
type legFailure struct {
	shard int
	err   error
}

func (e *legFailure) Error() string { return fmt.Sprintf("shard %d: %v", e.shard, e.err) }
func (e *legFailure) Unwrap() error { return e.err }

// writeRouteError maps a routing error onto the wire: leg failures through
// writeLegError (forward or shard_unavailable), everything else — errors
// from a router-local assembly run — through the server's own core-error
// mapping.
func (rt *Router) writeRouteError(w http.ResponseWriter, r *http.Request, err error) {
	var lf *legFailure
	if errors.As(err, &lf) {
		rt.writeLegError(w, r, lf.shard, lf.err)
		return
	}
	writeQueryError(w, r, err)
}

// validateQuery is the router's copy of the searcher's graph-independent
// validation, in the same check order and with the same messages, so a
// request rejected here gets the envelope a single server would send.
// Sharded topologies serve the k-core metric (the certificate and assembly
// are k-core constructions), so any other structure is a mismatch.
func (rt *Router) validateQuery(cq core.Query) error {
	if _, ok := core.LookupAlgo(cq.Algo); !ok {
		return &core.QueryError{Code: core.ErrCodeUnknownAlgorithm, Field: "algo",
			Reason: fmt.Sprintf("unknown algorithm %q", cq.Algo)}
	}
	if cq.Structure != "" {
		st, err := core.ParseStructure(cq.Structure)
		if err != nil {
			return &core.QueryError{Code: core.ErrCodeStructureMismatch, Field: "structure",
				Reason: fmt.Sprintf("unknown structure metric %q", cq.Structure)}
		}
		if st != core.StructureKCore {
			return &core.QueryError{Code: core.ErrCodeStructureMismatch, Field: "structure",
				Reason: fmt.Sprintf("searcher serves the %v metric, query wants %v", core.StructureKCore, st)}
		}
	}
	if cq.Q < 0 || int(cq.Q) >= rt.m.N {
		return &core.QueryError{Code: core.ErrCodeInvalidQuery, Field: "q",
			Reason: fmt.Sprintf("query vertex %d out of range [0,%d)", cq.Q, rt.m.N)}
	}
	if cq.K < 1 {
		return &core.QueryError{Code: core.ErrCodeInvalidQuery, Field: "k",
			Reason: fmt.Sprintf("k = %d must be ≥ 1", cq.K)}
	}
	if cq.Timeout < 0 {
		return &core.QueryError{Code: core.ErrCodeInvalidQuery, Field: "timeout",
			Reason: fmt.Sprintf("timeout %v must be non-negative", cq.Timeout)}
	}
	_, err := core.ValidateParams(cq)
	return err
}

// toClientQuery converts the core request to the typed client's shape for a
// shard leg.
func toClientQuery(cq core.Query) client.Query {
	return client.Query{
		Q:             int64(cq.Q),
		K:             cq.K,
		Algo:          cq.Algo,
		EpsF:          cq.EpsF,
		EpsA:          cq.EpsA,
		Theta:         cq.Theta,
		Structure:     cq.Structure,
		TimeoutMillis: cq.Timeout.Milliseconds(),
	}
}

// fromClientResult converts a shard's typed answer back to the wire shape
// the router serves.
func fromClientResult(res *client.Result) server.QueryResponse {
	members := make([]graph.V, len(res.Members))
	for i, m := range res.Members {
		members[i] = graph.V(m)
	}
	return server.QueryResponse{
		Q:       graph.V(res.Q),
		K:       res.K,
		Members: members,
		MCC:     server.CircleJSON{X: res.MCC.X, Y: res.MCC.Y, R: res.MCC.R},
		Delta:   res.Delta,
		Stats: server.StatsJSON{
			CandidateSize:     res.Stats.CandidateSize,
			FeasibilityChecks: res.Stats.FeasibilityChecks,
			BinaryIters:       res.Stats.BinaryIters,
			ElapsedMicros:     res.Stats.ElapsedMicros,
			Algorithm:         res.Stats.Algorithm,
		},
	}
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !rt.decodeJSON(w, r, &req) {
		return
	}
	cq := core.Query{
		Algo:      req.Algo,
		Q:         req.Q,
		K:         req.K,
		EpsF:      req.EpsF,
		EpsA:      req.EpsA,
		Theta:     req.Theta,
		Structure: req.Structure,
		Timeout:   time.Duration(req.TimeoutMillis) * time.Millisecond,
	}
	if err := rt.validateQuery(cq); err != nil {
		writeQueryError(w, r, err)
		return
	}
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	resp, err := rt.route(ctx, cq)
	if err != nil {
		rt.writeRouteError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, *resp)
}

// route answers one validated query: owner-first with the certificate fast
// path, falling back to cross-shard assembly. θ-SAC always assembles — its
// catchment disk is defined over current locations, which drift across
// ownership boundaries, so no shard can certify containment topologically.
func (rt *Router) route(ctx context.Context, cq core.Query) (*server.QueryResponse, error) {
	spec, _ := core.LookupAlgo(cq.Algo)
	if spec.Name == "theta" {
		rt.queryPath.With("theta").Inc()
		return rt.routeTheta(ctx, cq)
	}
	owner := rt.m.OwnerOf(cq.Q)
	lctx, span := rt.leg(ctx, "search", owner)
	verdict, err := rt.sets[owner].ShardSearch(lctx, toClientQuery(cq))
	span.End()
	if err != nil {
		return nil, &legFailure{owner, err}
	}
	if verdict.Contained {
		rt.queryPath.With("certified").Inc()
		if verdict.NoCommunity {
			return nil, core.ErrNoCommunity
		}
		if verdict.Result == nil {
			return nil, &legFailure{owner, errors.New("contained verdict carried no result")}
		}
		resp := fromClientResult(verdict.Result)
		return &resp, nil
	}
	rt.queryPath.With("assembled").Inc()
	return rt.routeAssembled(ctx, cq, owner)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !rt.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, core.ErrCodeInvalidQuery, "queries", "empty batch")
		return
	}
	// Template validation fails the whole batch with one 400, exactly like
	// the single server: algorithm and parameters through the registry,
	// structure against the (k-core) topology.
	template := core.Query{
		Algo:      req.Algo,
		EpsF:      req.EpsF,
		EpsA:      req.EpsA,
		Theta:     req.Theta,
		Structure: req.Structure,
	}
	if _, err := core.ValidateParams(template); err != nil {
		writeQueryError(w, r, err)
		return
	}
	if template.Structure != "" {
		probe := template
		probe.Q, probe.K = 0, 1
		if err := rt.validateQuery(probe); err != nil {
			writeQueryError(w, r, err)
			return
		}
	}
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	items := make([]server.BatchItemJSON, len(req.Queries))
	deadlined := make([]bool, len(req.Queries))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cq := template
				cq.Q, cq.K = req.Queries[i].Q, req.Queries[i].K
				items[i] = server.BatchItemJSON{Q: cq.Q, K: cq.K}
				if err := rt.validateQuery(cq); err != nil {
					items[i].Error = err.Error()
					continue
				}
				resp, err := rt.route(ctx, cq)
				if err != nil {
					items[i].Error = routeErrorMessage(err)
					deadlined[i] = isDeadline(err)
					continue
				}
				items[i].Members = resp.Members
				items[i].MCC = resp.MCC
			}
		}()
	}
	for i := range req.Queries {
		work <- i
	}
	close(work)
	wg.Wait()
	// A deadline that actually cut queries short fails the whole batch with
	// 503, mirroring the single server's status-keyed behavior.
	for i, d := range deadlined {
		if d {
			writeError(w, r, http.StatusServiceUnavailable, server.CodeDeadlineExceeded, "",
				"batch deadline exceeded: "+items[i].Error)
			return
		}
	}
	writeJSON(w, http.StatusOK, server.BatchResponse{Items: items})
}

// routeErrorMessage renders a routing error as a batch item's error string.
// Forwarded shard verdicts use the shard's own message, so item errors read
// the same as a single server's.
func routeErrorMessage(err error) string {
	var lf *legFailure
	if errors.As(err, &lf) {
		var apiErr *client.APIError
		if errors.As(lf.err, &apiErr) && apiErr.Status != http.StatusServiceUnavailable &&
			apiErr.Status != http.StatusTooManyRequests && apiErr.Message != "" {
			return apiErr.Message
		}
		return fmt.Sprintf("shard %d unavailable: %v", lf.shard, lf.err)
	}
	return err.Error()
}

// isDeadline reports whether a routing error is a deadline/cancellation —
// the condition that fails a whole batch.
func isDeadline(err error) bool {
	if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == server.CodeDeadlineExceeded
}
