package router

import (
	"context"
	"sort"
	"sync"

	"sacsearch/client"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
	"sacsearch/internal/telemetry"
)

// The slow path: when no single shard can certify a query, the router
// gathers every vertex the answer could touch — each with its owner's
// authoritative location and full adjacency — builds the induced subgraph,
// and runs the stock algorithm itself.
//
// Why this is exact (k-core algorithms): every registered k-core algorithm
// is a pure function of X = the connected component of q in the global
// k-core. The gathered set U is a superset of X (induction along any path
// inside X: a member's same-shard X-neighbors share its optimistic
// component; its cross-shard X-neighbors appear in the frontier and are
// seeded at their owners, where they survive the optimistic peel because
// they are in the global k-core). Every U-internal edge is covered because
// owners report full adjacency. The k-core of induced(U) then equals the
// global k-core restricted to U in both directions: X survives inside U
// (all of X and its edges are present), and any k-core of induced(U) is a
// min-degree-k subgraph of the full graph, hence inside the global k-core.
// So the component of q is X exactly, locations match the owners', and the
// assembled Search returns the single-engine answer (members, circle,
// radius; work counters can differ).
//
// θ-SAC instead gathers O(loc(q), θ) by disk: every shard reports its owned
// vertices inside the circle under the same closed-disk predicate the
// algorithm itself uses, so the assembled BFS component and feasibility
// peel are the single-engine ones verbatim.

// routeAssembled gathers the cross-shard k-core closure around q and runs
// the query locally. owner is q's shard (already consulted and uncertified).
func (rt *Router) routeAssembled(ctx context.Context, cq core.Query, owner int) (*server.QueryResponse, error) {
	resp, _, err := rt.routeAssembledGathered(ctx, cq, owner)
	return resp, err
}

// routeAssembledGathered is routeAssembled plus the gathered vertex ids —
// a superset of the candidate set X, which the standing-query layer uses as
// its check-in watch set.
func (rt *Router) routeAssembledGathered(ctx context.Context, cq core.Query, owner int) (*server.QueryResponse, []int64, error) {
	ctx, aspan := telemetry.StartSpan(ctx, "assemble")
	defer aspan.End()
	collected := make(map[int64]client.ShardVertex)
	seeded := map[int64]bool{int64(cq.Q): true}
	pending := make([][]int64, rt.m.Shards)
	pending[owner] = []int64{int64(cq.Q)}
	rounds := 0
	for {
		var shards []int
		for s := range pending {
			if len(pending[s]) > 0 {
				shards = append(shards, s)
			}
		}
		if len(shards) == 0 {
			break
		}
		rounds++
		rt.expandRounds.Inc()
		expansions := make([]*client.ShardExpansion, len(shards))
		errs := make([]error, len(shards))
		var wg sync.WaitGroup
		for i, s := range shards {
			wg.Add(1)
			go func(i, s int) {
				defer wg.Done()
				lctx, span := rt.leg(ctx, "expand", s)
				defer span.End()
				expansions[i], errs[i] = rt.sets[s].ShardExpand(lctx, cq.K, pending[s])
			}(i, s)
		}
		wg.Wait()
		pending = make([][]int64, rt.m.Shards)
		for i, exp := range expansions {
			if errs[i] != nil {
				return nil, nil, &legFailure{shards[i], errs[i]}
			}
			for _, m := range exp.Members {
				if _, ok := collected[m.V]; !ok {
					collected[m.V] = m
				}
			}
			for _, f := range exp.Frontier {
				if seeded[f] {
					continue
				}
				if _, ok := collected[f]; ok {
					continue
				}
				seeded[f] = true
				o := rt.m.OwnerOf(graph.V(f))
				pending[o] = append(pending[o], f)
			}
		}
	}
	aspan.SetAttr("rounds", rounds)
	aspan.SetAttr("gathered", len(collected))
	if _, ok := collected[int64(cq.Q)]; !ok {
		// q was alive when its shard declined to certify but dead by the
		// time the closure ran (concurrent topology churn): at the closure's
		// snapshot q is outside the global k-core.
		return nil, nil, core.ErrNoCommunity
	}
	gathered := make([]int64, 0, len(collected))
	for id := range collected {
		gathered = append(gathered, id)
	}
	resp, err := rt.runLocal(ctx, cq, collected)
	if err != nil {
		return nil, nil, err
	}
	return resp, gathered, nil
}

// routeTheta gathers the θ-SAC catchment disk across all shards and runs
// the query locally. Ownership is spatial only at partition time — vertices
// drift arbitrarily afterwards — so every shard is asked; each reports its
// owned vertices currently inside the disk.
func (rt *Router) routeTheta(ctx context.Context, cq core.Query) (*server.QueryResponse, error) {
	ctx, aspan := telemetry.StartSpan(ctx, "assemble")
	defer aspan.End()
	owner := rt.m.OwnerOf(cq.Q)
	lctx, vspan := rt.leg(ctx, "vertex", owner)
	loc, err := rt.sets[owner].Vertex(lctx, int64(cq.Q))
	vspan.End()
	if err != nil {
		return nil, &legFailure{owner, err}
	}
	theta := *cq.Theta // required parameter; validated before routing
	gathered := make([][]client.ShardVertex, rt.m.Shards)
	errs := make([]error, rt.m.Shards)
	var wg sync.WaitGroup
	for s := 0; s < rt.m.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lctx, span := rt.leg(ctx, "range", s)
			defer span.End()
			gathered[s], errs[s] = rt.sets[s].ShardRange(lctx, loc.X, loc.Y, theta)
		}(s)
	}
	wg.Wait()
	collected := make(map[int64]client.ShardVertex)
	for s, vs := range gathered {
		if errs[s] != nil {
			return nil, &legFailure{s, errs[s]}
		}
		for _, v := range vs {
			collected[v.V] = v
		}
	}
	aspan.SetAttr("gathered", len(collected))
	if _, ok := collected[int64(cq.Q)]; !ok {
		// q moved off the fetched location between the two legs; at the
		// gather's view it is outside its own disk, so no community.
		return nil, core.ErrNoCommunity
	}
	return rt.runLocal(ctx, cq, collected)
}

// runLocal builds the induced subgraph over the gathered vertices and runs
// the stock Search on it. Global ids map to local ranks monotonically
// (ascending), so every id-ordered traversal inside the algorithms visits
// vertices in the same relative order as a single engine would and the
// answer remaps back unchanged.
func (rt *Router) runLocal(ctx context.Context, cq core.Query, vertices map[int64]client.ShardVertex) (*server.QueryResponse, error) {
	ctx, span := telemetry.StartSpan(ctx, "merge")
	defer span.End()
	span.SetAttr("vertices", len(vertices))
	ids := make([]int64, 0, len(vertices))
	for id := range vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rank := make(map[int64]graph.V, len(ids))
	for i, id := range ids {
		rank[id] = graph.V(i)
	}
	b := graph.NewBuilder(len(ids))
	for i, id := range ids {
		v := vertices[id]
		b.SetLoc(graph.V(i), geom.Point{X: v.X, Y: v.Y})
		for _, nb := range v.Adj {
			// Both endpoints report every shared edge; adding it from the
			// lower endpoint only keeps it single.
			if j, ok := rank[nb]; ok && graph.V(i) < j {
				b.AddEdge(graph.V(i), j)
			}
		}
	}
	g := b.Build()
	searcher := core.NewSearcher(g)
	// The assembled searcher is request-private, so the only coordination
	// needed for intra-query parallelism is scaling the budget by how many
	// assembly runs are active right now.
	if n := rt.cfg.QueryParallelism; n > 1 {
		inf := rt.inflight.Add(1)
		defer rt.inflight.Add(-1)
		eff := n / int(inf)
		if eff < 1 {
			eff = 1
		}
		searcher.SetParallelism(eff)
	}
	lq := cq
	lq.Q = rank[int64(cq.Q)]
	res, err := searcher.Search(ctx, lq)
	if err != nil {
		return nil, err
	}
	members := make([]graph.V, len(res.Members))
	for i, m := range res.Members {
		members[i] = graph.V(ids[m])
	}
	spec, _ := core.LookupAlgo(cq.Algo)
	return &server.QueryResponse{
		Q:       cq.Q,
		K:       res.K,
		Members: members,
		MCC:     server.CircleJSON{X: res.MCC.C.X, Y: res.MCC.C.Y, R: res.MCC.R},
		Delta:   res.Delta,
		Stats: server.StatsJSON{
			CandidateSize:     res.Stats.CandidateSize,
			FeasibilityChecks: res.Stats.FeasibilityChecks,
			BinaryIters:       res.Stats.BinaryIters,
			ElapsedMicros:     res.Stats.Elapsed.Microseconds(),
			Algorithm:         spec.Name,
		},
	}, nil
}
