package spatial

import (
	"math"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// SubGrid is a uniform bucket grid over a subset of a graph's vertices,
// designed for the SAC query hot path: it is rebuilt once per query over the
// candidate set and probed by many circle range queries (Exact and Exact+
// enumerate O(|X|²)–O(|X|³) circles; AppAcc gathers a prefix per
// binary-search probe per anchor). Unlike Grid it stores its buckets in CSR
// form — three flat slices reused across Build calls — so steady-state
// rebuilds allocate nothing and queries touch contiguous memory.
//
// A SubGrid snapshots the subset's locations at Build time; rebuild after
// location updates. It is not safe for concurrent use.
type SubGrid struct {
	minX, minY float64
	cell       float64 // cell edge length
	cols, rows int

	start []int32      // CSR offsets, len cols*rows+1; bucket c is items[start[c]:start[c+1]]
	ids   []graph.V    // vertex ids grouped by cell
	pts   []geom.Point // locations parallel to ids

	cellIdx []int32 // scratch: cell index per input vertex during Build
}

// Len returns the number of indexed vertices.
func (sg *SubGrid) Len() int { return len(sg.ids) }

// Build indexes the current locations of vs in gr, aiming for roughly
// targetPerCell vertices per cell (<= 0 defaults to 4). Previous contents
// are discarded; backing storage is reused.
func (sg *SubGrid) Build(gr *graph.Graph, vs []graph.V, targetPerCell int) {
	if targetPerCell <= 0 {
		targetPerCell = 4
	}
	n := len(vs)
	sg.ids = sg.ids[:0]
	sg.pts = sg.pts[:0]
	if n == 0 {
		sg.cell = 1
		sg.cols, sg.rows = 1, 1
		sg.start = append(sg.start[:0], 0, 0)
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, v := range vs {
		p := gr.Loc(v)
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	sg.minX, sg.minY = minX, minY
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	cells := float64(n) / float64(targetPerCell)
	if cells < 1 {
		cells = 1
	}
	// Area-based sizing alone explodes the cell count on anisotropic input
	// (members sharing one coordinate make one extent collapse towards the
	// 1e-9 floor, so sqrt(w·h/cells) shrinks without bound); the w/cells and
	// h/cells terms keep each axis at O(cells) columns/rows, so the total
	// stays O(n) regardless of aspect ratio.
	sg.cell = math.Max(math.Sqrt(w*h/cells), math.Max(w, h)/cells)
	if sg.cell <= 0 || math.IsNaN(sg.cell) {
		sg.cell = math.Max(w, h)
	}
	sg.cols = int(w/sg.cell) + 1
	sg.rows = int(h/sg.cell) + 1
	nc := sg.cols * sg.rows

	// Counting sort into CSR: count, prefix-sum, place.
	sg.start = sg.start[:0]
	for i := 0; i <= nc; i++ {
		sg.start = append(sg.start, 0)
	}
	sg.cellIdx = sg.cellIdx[:0]
	for _, v := range vs {
		c := sg.cellOf(gr.Loc(v))
		sg.cellIdx = append(sg.cellIdx, int32(c))
		sg.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		sg.start[c+1] += sg.start[c]
	}
	if cap(sg.ids) < n {
		sg.ids = make([]graph.V, n)
		sg.pts = make([]geom.Point, n)
	} else {
		sg.ids = sg.ids[:n]
		sg.pts = sg.pts[:n]
	}
	// start doubles as the placement cursor; shift it back afterwards.
	for i, v := range vs {
		c := sg.cellIdx[i]
		at := sg.start[c]
		sg.ids[at] = v
		sg.pts[at] = gr.Loc(v)
		sg.start[c]++
	}
	for c := nc; c > 0; c-- {
		sg.start[c] = sg.start[c-1]
	}
	sg.start[0] = 0
}

func (sg *SubGrid) cellOf(p geom.Point) int {
	cx := clampInt(int((p.X-sg.minX)/sg.cell), 0, sg.cols-1)
	cy := clampInt(int((p.Y-sg.minY)/sg.cell), 0, sg.rows-1)
	return cy*sg.cols + cx
}

// InCircle appends every indexed vertex inside the closed disk c (with
// geom.Eps tolerance, matching Grid.InCircle) to dst and returns dst.
func (sg *SubGrid) InCircle(c geom.Circle, dst []graph.V) []graph.V {
	if c.R < 0 || len(sg.ids) == 0 {
		return dst
	}
	loX := clampInt(int((c.C.X-c.R-sg.minX)/sg.cell), 0, sg.cols-1)
	hiX := clampInt(int((c.C.X+c.R-sg.minX)/sg.cell), 0, sg.cols-1)
	loY := clampInt(int((c.C.Y-c.R-sg.minY)/sg.cell), 0, sg.rows-1)
	hiY := clampInt(int((c.C.Y+c.R-sg.minY)/sg.cell), 0, sg.rows-1)
	r2 := (c.R + geom.Eps) * (c.R + geom.Eps)
	for cy := loY; cy <= hiY; cy++ {
		row := cy * sg.cols
		for cx := loX; cx <= hiX; cx++ {
			lo, hi := sg.start[row+cx], sg.start[row+cx+1]
			for i := lo; i < hi; i++ {
				if sg.pts[i].Dist2(c.C) <= r2 {
					dst = append(dst, sg.ids[i])
				}
			}
		}
	}
	return dst
}

// InAnnulus appends vertices with rInner <= dist(p, center) <= rOuter (with
// geom.Eps tolerance on both bounds) to dst and returns dst.
func (sg *SubGrid) InAnnulus(center geom.Point, rInner, rOuter float64, dst []graph.V) []graph.V {
	if rOuter < 0 || len(sg.ids) == 0 {
		return dst
	}
	loX := clampInt(int((center.X-rOuter-sg.minX)/sg.cell), 0, sg.cols-1)
	hiX := clampInt(int((center.X+rOuter-sg.minX)/sg.cell), 0, sg.cols-1)
	loY := clampInt(int((center.Y-rOuter-sg.minY)/sg.cell), 0, sg.rows-1)
	hiY := clampInt(int((center.Y+rOuter-sg.minY)/sg.cell), 0, sg.rows-1)
	out2 := (rOuter + geom.Eps) * (rOuter + geom.Eps)
	// An inner bound at or below the tolerance excludes nothing: squaring
	// (rInner - Eps) would flip a tiny negative bound positive and wrongly
	// drop near-center vertices.
	in2 := -1.0
	if rInner > geom.Eps {
		in2 = (rInner - geom.Eps) * (rInner - geom.Eps)
	}
	for cy := loY; cy <= hiY; cy++ {
		row := cy * sg.cols
		for cx := loX; cx <= hiX; cx++ {
			lo, hi := sg.start[row+cx], sg.start[row+cx+1]
			for i := lo; i < hi; i++ {
				d2 := sg.pts[i].Dist2(center)
				if d2 <= out2 && d2 >= in2 {
					dst = append(dst, sg.ids[i])
				}
			}
		}
	}
	return dst
}
