package core

import (
	"slices"

	"sacsearch/internal/graph"
)

// Snapshot support. Snapshot-isolated serving (internal/snapshot) publishes
// immutable graph views; the two primitives here keep queries against those
// views cheap. SnapshotOnto derives a base Searcher for a freshly published
// clone without re-running the O(m) decomposition, and AdoptFrom rebinds a
// pooled worker to a snapshot's base in O(1) so the worker's scratch space
// and warmed candidate cache survive across publications — epoch-validated
// caches self-invalidate exactly when the snapshot's location or topology
// epoch actually moved.

// SnapshotOnto returns a base Searcher over g — an immutable clone of this
// searcher's graph — carrying a private copy of the current core
// decomposition, so it is detached from later in-place maintainer updates on
// this searcher. Cost is O(n) (the copy), not O(m) (a re-decomposition).
//
// coresFrom, when non-nil, must be a previous snapshot base whose topology
// epoch equals g's: its (immutable) core slice is shared instead of copied,
// which makes location-only publications O(1) in decomposition cost. The
// k-truss number map, when present, is always shared: it is immutable
// because k-truss searchers reject topology updates.
func (s *Searcher) SnapshotOnto(g *graph.Graph, coresFrom *Searcher) *Searcher {
	cores := s.cores
	if coresFrom != nil {
		cores = coresFrom.cores
	} else {
		cores = slices.Clone(cores)
	}
	snap := &Searcher{
		g:          g,
		structure:  s.structure,
		cores:      cores,
		truss:      s.truss,
		peeler:     nil, // base searchers are cloned from, never queried
		inX:        nil,
		visited:    nil,
		noCache:    s.noCache,
		noPruning2: s.noPruning2,
		noAnnulus:  s.noAnnulus,
		parallel:   s.parallel,
	}
	return snap
}

// AdoptFrom rebinds this searcher to base's graph and decomposition. It is
// the pooled-worker half of snapshot serving: the graph pointer, core slice
// and truss map are swapped in O(1); scratch buffers (sized to the vertex
// count, which snapshots never change) and the candidate cache carry over.
// Cached memberships, induced subgraphs and sorted views revalidate against
// the adopted graph's topology and location epochs on the next query — the
// epochs are inherited from one mutation timeline, so an unchanged epoch
// means an unchanged graph.
//
// Both searchers must use the same structure metric and vertex count;
// mismatches panic (adoption across datasets is a programming bug).
func (s *Searcher) AdoptFrom(base *Searcher) {
	if s.structure != base.structure {
		panic("core: AdoptFrom across structure metrics")
	}
	if s.g != base.g {
		if s.g.NumVertices() != base.g.NumVertices() {
			panic("core: AdoptFrom across vertex counts")
		}
		s.g = base.g
		s.peeler.SetGraph(base.g)
		if s.trussChk != nil {
			s.trussChk.SetGraph(base.g)
		}
		if s.cliqueChk != nil {
			s.cliqueChk.SetGraph(base.g)
		}
		// The maintainer wraps the old graph and the old core slice; edge
		// updates on a pooled worker would corrupt the snapshot anyway, so
		// drop it and let it re-wrap lazily if ever used.
		s.maint = nil
	}
	s.cores = base.cores
	s.truss = base.truss
}
