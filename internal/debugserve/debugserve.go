// Package debugserve exposes the Go runtime profiling endpoints
// (net/http/pprof) on a dedicated listener, opt-in only.
//
// The handlers are registered on a private mux rather than by importing
// net/http/pprof for its side effect: the blank import registers on
// http.DefaultServeMux, which would silently attach profiling to any
// component in the process that serves DefaultServeMux. Keeping the
// endpoints on their own address also keeps them off the public API
// listener, so operators can firewall the debug port independently.
package debugserve

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns a mux serving the standard pprof surface under
// /debug/pprof/.
func Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the pprof listener on addr in a background goroutine and
// reports outcomes through logf. An empty addr is a no-op, so callers can
// pass their -pprof-addr flag value straight through. Profile and trace
// requests stream for a caller-chosen duration, so the server deliberately
// sets no write timeout.
func Serve(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logf("pprof: serving /debug/pprof/ on %s", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logf("pprof: %v", err)
		}
	}()
}
