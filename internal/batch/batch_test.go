package batch

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// clusteredGraph plants nc cliques of size cs in the unit square with a few
// long-range edges — every vertex has a spatially tight community.
func clusteredGraph(seed int64, nc, cs, extra int) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	n := nc * cs
	b := graph.NewBuilder(n)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	return b.Build()
}

func sameMembers(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]graph.V(nil), a...)
	bs := append([]graph.V(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestRunMatchesSequential(t *testing.T) {
	g := clusteredGraph(7, 8, 6, 12)
	s := core.NewSearcher(g)
	var queries []Query
	for v := 0; v < g.NumVertices(); v += 3 {
		queries = append(queries, Query{Q: graph.V(v), K: 4})
	}
	items := Run(context.Background(), s, queries, Options{Workers: 4})
	if len(items) != len(queries) {
		t.Fatalf("got %d items for %d queries", len(items), len(queries))
	}
	for i, it := range items {
		if it.Query != queries[i] {
			t.Fatalf("item %d out of order: %v vs %v", i, it.Query, queries[i])
		}
		want, wantErr := s.AppFast(queries[i].Q, queries[i].K, 0.5)
		if (it.Err != nil) != (wantErr != nil) {
			t.Fatalf("item %d: err %v vs sequential %v", i, it.Err, wantErr)
		}
		if it.Err != nil {
			continue
		}
		if !sameMembers(it.Result.Members, want.Members) {
			t.Fatalf("item %d: members %v vs sequential %v", i, it.Result.Members, want.Members)
		}
	}
}

func TestRunDeduplicates(t *testing.T) {
	g := clusteredGraph(11, 6, 6, 8)
	s := core.NewSearcher(g)
	queries := []Query{
		{Q: 0, K: 4},
		{Q: 1, K: 4},
		{Q: 0, K: 4}, // duplicate of 0
		{Q: 0, K: 3}, // same vertex, different k — not a duplicate
		{Q: 0, K: 4}, // duplicate of 0
	}
	items := Run(context.Background(), s, queries, Options{Workers: 2})
	if items[0].Result == nil || items[2].Result == nil {
		t.Fatal("duplicate queries not answered")
	}
	if items[0].Result != items[2].Result || items[0].Result != items[4].Result {
		t.Fatal("duplicates were recomputed instead of shared")
	}
	if items[0].Result == items[3].Result {
		t.Fatal("different k wrongly deduplicated")
	}
}

// TestRunDeduplicatedAliasingSafe pins the documented Item aliasing: all
// occurrences of a deduplicated (q, k) share one *core.Result, and that
// shared result is a stable copy — it must survive later batches run on the
// same pool (whose workers reuse their scratch space) bit-for-bit.
func TestRunDeduplicatedAliasingSafe(t *testing.T) {
	g := clusteredGraph(11, 6, 6, 8)
	pool := core.NewPool(core.NewSearcher(g))
	queries := []Query{{Q: 0, K: 4}, {Q: 0, K: 4}, {Q: 0, K: 4}}
	items := RunOn(context.Background(), pool, queries, Options{Workers: 1})
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if it.Result != items[0].Result {
			t.Fatalf("item %d does not alias the first answer", i)
		}
	}
	members := append([]graph.V(nil), items[0].Result.Members...)
	mcc := items[0].Result.MCC

	// Churn the pooled workers' scratch with a different, larger batch.
	var wide []Query
	for v := 0; v < g.NumVertices(); v++ {
		wide = append(wide, Query{Q: graph.V(v), K: 3})
	}
	RunOn(context.Background(), pool, wide, Options{Workers: 4})

	if !sameMembers(items[0].Result.Members, members) || items[0].Result.MCC != mcc {
		t.Fatalf("shared result mutated by a later batch: %v (was %v)", items[0].Result.Members, members)
	}
}

func TestRunErrorsPerQuery(t *testing.T) {
	g := clusteredGraph(13, 5, 5, 5)
	s := core.NewSearcher(g)
	bad := graph.V(g.NumVertices() + 5)
	queries := []Query{{Q: 0, K: 4}, {Q: bad, K: 4}, {Q: 1, K: 4}}
	items := Run(context.Background(), s, queries, Options{})
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("valid queries errored: %v %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("out-of-range query did not error")
	}
}

func TestRunNoCommunity(t *testing.T) {
	// A path graph has no 3-core anywhere.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
		b.SetLoc(graph.V(i), geom.Point{X: float64(i) * 0.1, Y: 0.5})
	}
	b.SetLoc(4, geom.Point{X: 0.4, Y: 0.5})
	g := b.Build()
	s := core.NewSearcher(g)
	items := Run(context.Background(), s, []Query{{Q: 2, K: 3}}, Options{})
	if !errors.Is(items[0].Err, core.ErrNoCommunity) {
		t.Fatalf("err = %v, want ErrNoCommunity", items[0].Err)
	}
}

func TestRunWorkerCountsAgree(t *testing.T) {
	g := clusteredGraph(17, 8, 6, 20)
	s := core.NewSearcher(g)
	queries := Workload(func() []graph.V {
		var qs []graph.V
		for v := 0; v < g.NumVertices(); v += 2 {
			qs = append(qs, graph.V(v))
		}
		return qs
	}(), 4)

	base := Run(context.Background(), s, queries, Options{Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		got := Run(context.Background(), s, queries, Options{Workers: workers})
		for i := range base {
			if (base[i].Err != nil) != (got[i].Err != nil) {
				t.Fatalf("workers=%d item %d: error mismatch", workers, i)
			}
			if base[i].Err != nil {
				continue
			}
			if !sameMembers(base[i].Result.Members, got[i].Result.Members) {
				t.Fatalf("workers=%d item %d: %v vs %v",
					workers, i, got[i].Result.Members, base[i].Result.Members)
			}
		}
	}
}

func TestRunAlgorithms(t *testing.T) {
	g := clusteredGraph(23, 5, 6, 10)
	s := core.NewSearcher(g)
	queries := []Query{{Q: 0, K: 4}, {Q: 6, K: 4}}
	for _, algo := range []Algo{AlgoAppFast, AlgoAppInc, AlgoAppAcc, AlgoExactPlus, AlgoExact} {
		items := Run(context.Background(), s, queries, Options{Algorithm: algo, Workers: 2})
		for i, it := range items {
			if it.Err != nil && !errors.Is(it.Err, core.ErrNoCommunity) {
				t.Fatalf("%v item %d: %v", algo, i, it.Err)
			}
			if it.Err == nil && !it.Result.Contains(queries[i].Q) {
				t.Fatalf("%v item %d: community misses q", algo, i)
			}
		}
	}
}

// TestLegacyOptionsTemplate pins the mapping from the legacy enum-and-
// epsilon Options fields onto the registry template: absent epsilons stay
// nil (the registry's per-algorithm defaults match the old batch defaults),
// EpsFSet turns an explicit 0 into a present parameter, and an explicit
// Template wins outright.
func TestLegacyOptionsTemplate(t *testing.T) {
	if tm := (Options{}).template(); tm.Algo != "appfast" || tm.EpsF != nil {
		t.Fatalf("zero Options template = %+v", tm)
	}
	if tm := (Options{EpsFSet: true}).template(); tm.EpsF == nil || *tm.EpsF != 0 {
		t.Fatalf("EpsFSet template = %+v", tm)
	}
	if tm := (Options{Algorithm: AlgoExactPlus}).template(); tm.Algo != "exact+" || tm.EpsA != nil {
		t.Fatalf("ExactPlus template = %+v", tm)
	}
	if tm := (Options{Algorithm: AlgoAppAcc, EpsA: 0.25}).template(); tm.Algo != "appacc" || *tm.EpsA != 0.25 {
		t.Fatalf("AppAcc template = %+v", tm)
	}
	if tm := (Options{Algorithm: AlgoExact, Template: core.Query{Algo: "theta", Theta: core.Float(0.2)}}).template(); tm.Algo != "theta" || *tm.Theta != 0.2 {
		t.Fatalf("explicit Template lost: %+v", tm)
	}
}

// TestTemplateTheta runs a θ-SAC batch through the registry template — an
// algorithm the legacy enum could not express.
func TestTemplateTheta(t *testing.T) {
	g := clusteredGraph(23, 5, 6, 10)
	s := core.NewSearcher(g)
	queries := []Query{{Q: 0, K: 3}, {Q: 6, K: 3}}
	items := Run(context.Background(), s, queries, Options{
		Template: core.Query{Algo: "theta", Theta: core.Float(0.4)},
		Workers:  2,
	})
	ref := core.NewSearcher(g)
	for i, it := range items {
		want, wantErr := ref.ThetaSAC(queries[i].Q, queries[i].K, 0.4)
		if (it.Err == nil) != (wantErr == nil) {
			t.Fatalf("item %d: err = %v, want %v", i, it.Err, wantErr)
		}
		if it.Err == nil && !slicesEqualV(it.Result.Members, want.Members) {
			t.Fatalf("item %d: members %v, want %v", i, it.Result.Members, want.Members)
		}
	}
}

func slicesEqualV(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAlgoString(t *testing.T) {
	for algo, want := range map[Algo]string{
		AlgoAppFast:   "AppFast",
		AlgoAppInc:    "AppInc",
		AlgoAppAcc:    "AppAcc",
		AlgoExactPlus: "ExactPlus",
		AlgoExact:     "Exact",
		Algo(99):      "Algo(99)",
	} {
		if got := algo.String(); got != want {
			t.Fatalf("Algo(%d).String() = %q, want %q", int(algo), got, want)
		}
	}
}

func TestStream(t *testing.T) {
	g := clusteredGraph(29, 8, 6, 15)
	s := core.NewSearcher(g)
	var queries []Query
	for v := 0; v < g.NumVertices(); v += 2 {
		queries = append(queries, Query{Q: graph.V(v), K: 4})
	}
	in := make(chan Query)
	out := Stream(context.Background(), s, in, Options{Workers: 3})
	go func() {
		for _, q := range queries {
			in <- q
		}
		close(in)
	}()
	got := map[Query]*core.Result{}
	for it := range out {
		if it.Err != nil && !errors.Is(it.Err, core.ErrNoCommunity) {
			t.Fatalf("stream item %v: %v", it.Query, it.Err)
		}
		got[it.Query] = it.Result
	}
	if len(got) != len(queries) {
		t.Fatalf("stream returned %d distinct answers, want %d", len(got), len(queries))
	}
	// Spot-check against direct computation.
	for _, q := range queries[:5] {
		want, err := s.AppFast(q.Q, q.K, 0.5)
		if err != nil {
			if got[q] != nil {
				t.Fatalf("query %v: stream answered, sequential errored", q)
			}
			continue
		}
		if !sameMembers(got[q].Members, want.Members) {
			t.Fatalf("query %v: %v vs %v", q, got[q].Members, want.Members)
		}
	}
}

func TestWorkload(t *testing.T) {
	qs := []graph.V{3, 1, 4}
	w := Workload(qs, 5)
	if len(w) != 3 || w[0] != (Query{Q: 3, K: 5}) || w[2] != (Query{Q: 4, K: 5}) {
		t.Fatalf("Workload = %v", w)
	}
}

func BenchmarkBatch(b *testing.B) {
	g := clusteredGraph(31, 20, 8, 60)
	s := core.NewSearcher(g)
	var qs []graph.V
	for v := 0; v < g.NumVertices(); v++ {
		qs = append(qs, graph.V(v))
	}
	queries := Workload(qs, 4)
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(context.Background(), s, queries, Options{Workers: workers})
			}
		})
	}
}

// TestSharedOracleMatchesUnshared pins the shared-plan differential: with
// SharedOracle on, every item — across worker counts and every candidate-
// based algorithm — must match the unshared run exactly.
func TestSharedOracleMatchesUnshared(t *testing.T) {
	g := clusteredGraph(13, 6, 8, 20)
	s := core.NewSearcher(g)
	var queries []Query
	for v := 0; v < g.NumVertices(); v += 2 {
		queries = append(queries, Query{Q: graph.V(v), K: 4})
		queries = append(queries, Query{Q: graph.V(v), K: 4}) // duplicates exercise fan-out
	}
	for _, algo := range []string{"appfast", "appinc", "appacc", "exact+"} {
		tmpl := core.Query{Algo: algo}
		base := RunOn(context.Background(), core.NewPool(s), queries, Options{Workers: 1, Template: tmpl})
		for _, workers := range []int{1, 4} {
			shared := RunOn(context.Background(), core.NewPool(s), queries,
				Options{Workers: workers, Template: tmpl, SharedOracle: true})
			if len(shared) != len(base) {
				t.Fatalf("%s workers=%d: %d items vs %d", algo, workers, len(shared), len(base))
			}
			for i := range base {
				if (base[i].Err != nil) != (shared[i].Err != nil) {
					t.Fatalf("%s workers=%d item %d: err %v vs %v", algo, workers, i, shared[i].Err, base[i].Err)
				}
				if base[i].Err != nil {
					continue
				}
				if !sameMembers(base[i].Result.Members, shared[i].Result.Members) {
					t.Fatalf("%s workers=%d item %d: members %v vs %v",
						algo, workers, i, shared[i].Result.Members, base[i].Result.Members)
				}
				if base[i].Result.MCC != shared[i].Result.MCC {
					t.Fatalf("%s workers=%d item %d: MCC %+v vs %+v",
						algo, workers, i, shared[i].Result.MCC, base[i].Result.MCC)
				}
			}
		}
	}
}

// TestSharedPlansEpochFallback pins the staleness guard: a plan table built
// before a location mutation must miss afterwards (epoch changed), with the
// searcher transparently falling back to its own candidate path and still
// answering correctly.
func TestSharedPlansEpochFallback(t *testing.T) {
	g := clusteredGraph(17, 4, 8, 10)
	builder := core.NewSearcher(g)
	plans := core.BuildSharedPlans(builder, []core.PlanKey{{Q: 0, K: 4}, {Q: 5, K: 4}})
	if plans == nil || plans.Len() == 0 {
		t.Fatal("no plans built")
	}

	// Fresh-table sanity: planned query answers match an unplanned searcher.
	s := core.NewSearcher(g)
	want, werr := s.AppFast(0, 4, 0.5)
	ps := core.NewSearcher(g)
	ps.SetSharedPlans(plans)
	got, gerr := ps.AppFast(0, 4, 0.5)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("fresh table: err %v vs %v", gerr, werr)
	}
	if werr == nil && !sameMembers(want.Members, got.Members) {
		t.Fatalf("fresh table: members %v vs %v", got.Members, want.Members)
	}

	// Mutate a location: the epoch guard must reject the table and the
	// searcher must still answer — possibly differently, matching any
	// plain searcher on the mutated graph.
	g.SetLoc(0, geom.Point{X: 0.99, Y: 0.99})
	want2, werr2 := core.NewSearcher(g).AppFast(0, 4, 0.5)
	got2, gerr2 := ps.AppFast(0, 4, 0.5)
	if (werr2 == nil) != (gerr2 == nil) {
		t.Fatalf("stale table: err %v vs %v", gerr2, werr2)
	}
	if werr2 == nil {
		if !sameMembers(want2.Members, got2.Members) {
			t.Fatalf("stale table: members %v vs %v", got2.Members, want2.Members)
		}
		if want2.MCC != got2.MCC {
			t.Fatalf("stale table: MCC %+v vs %+v", got2.MCC, want2.MCC)
		}
	}
}
