// Package snapshot implements MVCC-style snapshot isolation for SAC serving:
// one writer goroutine owns the mutable graph and publishes immutable Snap
// values through an atomic pointer, so queries pin a snapshot and run with
// zero locks — readers never observe torn state, and a burst of check-ins or
// edge churn never stalls a single query.
//
// Architecture:
//
//	CheckIn / UpdateEdge ──► events channel ──► writer goroutine
//	                                            │  applies a batch to the
//	                                            │  mutable graph (SetLoc,
//	                                            │  kcore.Maintainer repair)
//	                                            ▼
//	                              publish: Clone + Freeze the graph,
//	                              SnapshotOnto a base Searcher (O(n) core
//	                              copy, no re-decomposition), store the
//	                              Snap in an atomic.Pointer
//	                                            ▼
//	queries ──► Current() ──► Snap.Get() ──► pooled worker rebound to the
//	            (atomic load)               pinned snapshot (AdoptFrom: O(1),
//	                                        warm candidate cache kept)
//
// Writers batch: every event waits for the publication that contains it
// (read-your-writes), but a burst of events is applied together and
// published once, so publication cost — an O(n) location copy plus an O(n)
// core-slice copy; the CSR is shared — amortizes over the burst. Workers
// rebind across snapshots instead of re-cloning, and their epoch-validated
// candidate caches drop exactly the state the snapshot actually invalidated
// (sorted views on a location change, memberships on a topology change).
package snapshot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/telemetry"
)

// ErrClosed is returned by writes submitted to a closed Engine.
var ErrClosed = errors.New("snapshot: engine closed")

// ErrPersist marks writes lost to a durability failure: the Persist hook
// returned an error, the batch was not published, and the engine is
// read-only from then on. errors.Is(err, ErrPersist) identifies both the
// failed batch's writes and every later rejected write.
var ErrPersist = errors.New("snapshot: persist failed")

// AppliedEvent describes one state-changing event the writer applied: a
// check-in, or an edge mutation that actually altered the edge set (no-op
// re-inserts and rejected events are not reported). The durability layer
// appends these to its write-ahead log before the snapshot containing them
// is published.
type AppliedEvent struct {
	// Checkin discriminates the two event shapes.
	Checkin bool
	// V and Loc describe a check-in.
	V   graph.V
	Loc geom.Point
	// U, W and Insert describe an edge mutation.
	U, W   graph.V
	Insert bool
}

// Options configures an Engine. The zero value serves defaults.
type Options struct {
	// QueueLen is the writer queue capacity; writes beyond it block the
	// submitter (back-pressure, not unbounded buffering). Default 1024.
	QueueLen int
	// BatchMax is the most events the writer applies before publishing a
	// snapshot. Larger batches amortize publication cost under write bursts
	// at the price of write latency. Default 128.
	BatchMax int
	// Persist, when non-nil, is the durability hook: the writer goroutine
	// calls it with each batch's state-changing events after applying them
	// and before publishing the snapshot that contains them — so a write
	// visible to Current is already in the log (group commit: one call, and
	// under an fsync-always log one fsync, per publication). It returns the
	// log sequence number of the batch's last record, which the published
	// snapshot reports as WalSeq. If it returns an error, the batch is not
	// published, every write in it fails with the error, and the engine
	// stops accepting writes (reads keep serving the last durable snapshot):
	// a non-durable write must never look committed.
	Persist func([]AppliedEvent) (seq uint64, err error)
	// InitialSeq is the log sequence number already covered by the graph the
	// engine starts from (the recovered checkpoint plus replayed tail).
	// Snapshots report it as WalSeq until the first persisted batch.
	InitialSeq uint64
	// Parallelism is the intra-query parallelism budget stamped on the base
	// searcher — every worker drawn from a snapshot inherits it, so Exact
	// and ExactPlus enumeration fans out over up to this many goroutines
	// per query. 0 (the default) and 1 mean serial. Servers that take
	// concurrent traffic should cap the per-query budget under load (see
	// server.Config.QueryParallelism) rather than setting a large value
	// here unconditionally.
	Parallelism int
	// Metrics, when non-nil, receives the engine's instrumentation:
	// publish latency and batch-coalescing histograms plus queue-depth and
	// progress gauges read at scrape time. Gauge registration is last-wins,
	// so a replica promotion that builds a fresh engine points the scrape
	// at the live one.
	Metrics *telemetry.Registry
	// OnPublish, when non-nil, is called by the writer goroutine right after
	// each snapshot publication with the published snapshot and the
	// state-changing events the publication contains (the same list the
	// Persist hook logs). The events slice is the hook's to keep. The call
	// runs on the writer's critical path — it must hand work off, never
	// block. Replaceable later via SetOnPublish.
	OnPublish func(*Snap, []AppliedEvent)
}

func (o Options) queueLen() int {
	if o.QueueLen > 0 {
		return o.QueueLen
	}
	return 1024
}

func (o Options) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 128
}

// Engine owns one mutable spatial graph and serves immutable snapshots of
// it. All methods are safe for concurrent use; the mutable graph is touched
// only by the writer goroutine.
type Engine struct {
	pool *core.Pool
	cur  atomic.Pointer[Snap]

	events chan event
	stop   chan struct{}
	done   chan struct{}
	closed sync.Once

	// Writer-owned state: the live graph, the master searcher whose
	// kcore.Maintainer repairs the decomposition incrementally, and the
	// previously published snapshot (so location-only publications share its
	// immutable core slice instead of copying). Nothing outside the writer
	// goroutine may touch these after New returns.
	g    *graph.Graph
	base *core.Searcher
	prev *Snap

	// Durability state, also writer-owned: the persist hook, the log
	// sequence the next publication will carry, and the latched persistence
	// failure that turns the engine read-only.
	persist    func([]AppliedEvent) (uint64, error)
	walSeq     uint64
	persistErr error
	// persistFail mirrors persistErr != nil for readers outside the writer
	// goroutine (health reporting), which may not touch persistErr itself.
	persistFail atomic.Bool

	published atomic.Uint64 // snapshots published (== latest Snap.Seq)
	applied   atomic.Uint64 // events applied

	// onPublish is the post-publication hook, swappable at runtime (the
	// subscription layer attaches after the engine exists; a replica
	// re-attaches across engine swaps). The writer loads it once per
	// publication.
	onPublish atomic.Pointer[func(*Snap, []AppliedEvent)]

	// Nil-safe instruments observed by the writer goroutine.
	publishDur  *telemetry.Histogram
	batchEvents *telemetry.Histogram
}

type opKind uint8

const (
	opCheckin opKind = iota
	opEdge
)

// result is one applied event's outcome, delivered after the snapshot
// containing the event is published.
type result struct {
	changed bool
	err     error
}

type event struct {
	op     opKind
	v      graph.V    // opCheckin
	loc    geom.Point // opCheckin
	u, w   graph.V    // opEdge
	insert bool       // opEdge
	done   chan result
}

// New takes ownership of g (the caller must not mutate or query it again),
// publishes the initial snapshot and starts the writer goroutine. Close
// releases the writer.
func New(g *graph.Graph, opt Options) *Engine {
	e := &Engine{
		g:       g,
		base:    core.NewSearcher(g),
		events:  make(chan event, opt.queueLen()),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		persist: opt.Persist,
		walSeq:  opt.InitialSeq,
	}
	e.base.SetParallelism(opt.Parallelism)
	if opt.OnPublish != nil {
		e.SetOnPublish(opt.OnPublish)
	}
	snap := e.freeze()
	e.pool = core.NewPool(snap.base)
	e.cur.Store(snap)
	if reg := opt.Metrics; reg != nil {
		e.publishDur = reg.Histogram("sac_engine_publish_duration_seconds",
			"Snapshot freeze-and-publish latency in the writer loop.", nil)
		e.batchEvents = reg.Histogram("sac_engine_batch_events",
			"Events coalesced per writer batch (group commit size).",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
		reg.GaugeFunc("sac_engine_queue_depth", "Writer queue depth (pending writes).",
			func() float64 { return float64(e.QueueDepth()) })
		reg.GaugeFunc("sac_engine_published", "Snapshots published since boot.",
			func() float64 { return float64(e.Published()) })
		reg.GaugeFunc("sac_engine_applied", "Write events applied since boot.",
			func() float64 { return float64(e.Applied()) })
		reg.GaugeFunc("sac_engine_pool_clones", "Searcher clones created by the snapshot pool.",
			func() float64 { return float64(e.PoolClones()) })
	}
	go e.writer(opt.batchMax())
	return e
}

// SetOnPublish installs (or, with nil, removes) the post-publication hook.
// The writer goroutine calls the installed hook after each publication with
// the new snapshot and its state-changing events; the hook must hand work
// off rather than block the writer. Safe to call at any time; publications
// racing the swap see either hook.
func (e *Engine) SetOnPublish(fn func(*Snap, []AppliedEvent)) {
	if fn == nil {
		e.onPublish.Store(nil)
		return
	}
	e.onPublish.Store(&fn)
}

// Current returns the latest published snapshot: one atomic load, no locks.
// The snapshot stays valid (and immutable) for as long as the caller holds
// it, however many publications happen meanwhile.
func (e *Engine) Current() *Snap { return e.cur.Load() }

// QueueDepth returns the number of writes waiting for the writer goroutine —
// the publication-lag signal /api/health reports.
func (e *Engine) QueueDepth() int { return len(e.events) }

// Published returns the number of snapshots published so far.
func (e *Engine) Published() uint64 { return e.published.Load() }

// Applied returns the number of write events applied so far.
func (e *Engine) Applied() uint64 { return e.applied.Load() }

// PoolClones returns the number of searcher workers ever created to serve
// queries — the peak-concurrency signal /api/health reports.
func (e *Engine) PoolClones() int64 { return e.pool.Created() }

// PersistFailed reports whether the ErrPersist latch has tripped: the engine
// is read-only and every further write fails. Health reporting downgrades
// the node's status on this signal.
func (e *Engine) PersistFailed() bool { return e.persistFail.Load() }

// NumVertices returns the (immutable) vertex count.
func (e *Engine) NumVertices() int { return e.g.NumVertices() }

// CheckIn moves vertex v to p in the next published snapshot. It returns
// after that snapshot is visible to Current (read-your-writes), when ctx
// fires (the write may still be applied afterwards), or when the engine
// closes.
func (e *Engine) CheckIn(ctx context.Context, v graph.V, p geom.Point) error {
	if v < 0 || int(v) >= e.NumVertices() {
		return fmt.Errorf("snapshot: vertex %d out of range [0,%d)", v, e.NumVertices())
	}
	if !geom.Finite(p.X) || !geom.Finite(p.Y) {
		return fmt.Errorf("snapshot: coordinates (%v, %v) must be finite", p.X, p.Y)
	}
	r, err := e.submit(ctx, event{op: opCheckin, v: v, loc: p, done: make(chan result, 1)})
	if err != nil {
		return err
	}
	// A check-in itself cannot fail, but its group commit can: r.err carries
	// the persistence failure that made the write non-durable.
	return r.err
}

// UpdateEdge inserts (insert=true) or deletes the undirected edge {u, v} in
// the next published snapshot, repairing the writer's core decomposition
// incrementally. It reports whether the edge set changed, with the same
// blocking semantics as CheckIn.
func (e *Engine) UpdateEdge(ctx context.Context, u, v graph.V, insert bool) (bool, error) {
	r, err := e.submit(ctx, event{op: opEdge, u: u, w: v, insert: insert, done: make(chan result, 1)})
	if err != nil {
		return false, err
	}
	return r.changed, r.err
}

// Close stops the writer goroutine and fails pending writes with ErrClosed.
// The last published snapshot remains readable.
func (e *Engine) Close() {
	e.closed.Do(func() { close(e.stop) })
	<-e.done
}

// submit enqueues ev and waits for its post-publication result.
func (e *Engine) submit(ctx context.Context, ev event) (result, error) {
	select {
	case e.events <- ev:
	case <-e.stop:
		return result{}, ErrClosed
	case <-ctx.Done():
		return result{}, ctx.Err()
	}
	select {
	case r := <-ev.done:
		return r, nil
	case <-e.stop:
		// The writer finishes a batch it has already dequeued even as stop
		// closes, so an applied-and-published write must never be reported
		// as failed: wait for the writer to exit (e.done), then a final
		// non-blocking drain of ev.done is authoritative — nothing can send
		// on it afterwards.
		select {
		case r := <-ev.done:
			return r, nil
		case <-e.done:
		}
		select {
		case r := <-ev.done:
			return r, nil
		default:
		}
		return result{}, ErrClosed
	case <-ctx.Done():
		// The event may still be applied later (documented); prefer a
		// result that already landed.
		select {
		case r := <-ev.done:
			return r, nil
		default:
		}
		return result{}, ctx.Err()
	}
}

// writer is the single goroutine that owns the mutable graph: it drains
// bursts of events, applies them, logs the batch through the persist hook
// (one group commit per burst), publishes one snapshot, and only then
// releases the events' waiters.
func (e *Engine) writer(batchMax int) {
	defer close(e.done)
	pending := make([]event, 0, batchMax)
	results := make([]result, 0, batchMax)
	applied := make([]AppliedEvent, 0, batchMax)
	for {
		select {
		case <-e.stop:
			return
		case ev := <-e.events:
			pending = append(pending[:0], ev)
		drain:
			for len(pending) < batchMax {
				select {
				case more := <-e.events:
					pending = append(pending, more)
				default:
					break drain
				}
			}
			// After a persistence failure the engine is read-only: the
			// mutable graph already diverged from the last durable state, so
			// applying anything more could only widen the gap. Fail the
			// whole batch without touching the graph.
			if e.persistErr != nil {
				for _, ev := range pending {
					ev.done <- result{err: e.persistErr}
				}
				continue
			}
			results = results[:0]
			applied = applied[:0]
			for _, ev := range pending {
				r := e.apply(ev)
				results = append(results, r)
				if r.err == nil && (ev.op == opCheckin || r.changed) {
					applied = append(applied, toApplied(ev))
				}
			}
			// Group commit: the whole batch becomes durable with one hook
			// call before any of it becomes visible. On failure nothing is
			// published — readers keep the last durable snapshot — and every
			// waiter in the batch learns its write was lost.
			if e.persist != nil && len(applied) > 0 {
				seq, err := e.persist(applied)
				if err != nil {
					e.persistErr = fmt.Errorf("%w, engine is read-only: %w", ErrPersist, err)
					e.persistFail.Store(true)
					for i := range results {
						results[i] = result{err: e.persistErr}
					}
					for i, ev := range pending {
						ev.done <- results[i]
					}
					continue
				}
				e.walSeq = seq
			}
			// Publish only when the batch actually moved an epoch: a batch
			// of rejected or no-op events (re-inserting a present edge, say)
			// changed nothing, so the previous snapshot already contains
			// every write — skipping the O(n) clone keeps garbage write
			// traffic from turning into allocation churn, and snapshotSeq
			// keeps meaning "distinct published states".
			e.batchEvents.Observe(float64(len(pending)))
			if e.prev == nil ||
				e.g.LocEpoch() != e.prev.locEpoch || e.g.TopoEpoch() != e.prev.topoEpoch {
				start := time.Now()
				snap := e.freeze()
				e.cur.Store(snap)
				e.publishDur.Observe(time.Since(start).Seconds())
				if fn := e.onPublish.Load(); fn != nil {
					// The hook keeps the slice; the writer's scratch buffer
					// is reused next batch, so hand over a copy.
					evs := make([]AppliedEvent, len(applied))
					copy(evs, applied)
					(*fn)(snap, evs)
				}
			}
			for i, ev := range pending {
				ev.done <- results[i]
			}
		}
	}
}

// toApplied converts an applied writer event to its durable description.
func toApplied(ev event) AppliedEvent {
	if ev.op == opCheckin {
		return AppliedEvent{Checkin: true, V: ev.v, Loc: ev.loc}
	}
	return AppliedEvent{U: ev.u, W: ev.w, Insert: ev.insert}
}

// apply mutates the writer's graph with one event. Only events that
// actually reached the graph count toward Applied; rejected ones (edge
// validation errors) do not.
func (e *Engine) apply(ev event) result {
	switch ev.op {
	case opCheckin:
		e.g.SetLoc(ev.v, ev.loc)
		e.applied.Add(1)
		return result{changed: true}
	default:
		var changed bool
		var err error
		if ev.insert {
			changed, err = e.base.ApplyEdgeInsert(ev.u, ev.w)
		} else {
			changed, err = e.base.ApplyEdgeRemove(ev.u, ev.w)
		}
		if err == nil {
			e.applied.Add(1)
		}
		return result{changed: changed, err: err}
	}
}

// freeze clones the writer's graph into an immutable view, derives its base
// searcher (O(n) core copy, no re-decomposition) and repoints the worker
// pool, returning the new snapshot.
func (e *Engine) freeze() *Snap {
	frozen := e.g.Clone()
	frozen.Freeze()
	// A publication whose topology epoch matches the previous one changed
	// only locations: the core decomposition is byte-identical, so the new
	// base shares the previous snapshot's immutable core slice.
	var coresFrom *core.Searcher
	if e.prev != nil && e.prev.topoEpoch == frozen.TopoEpoch() {
		coresFrom = e.prev.base
	}
	base := e.base.SnapshotOnto(frozen, coresFrom)
	snap := &Snap{
		eng:       e,
		g:         frozen,
		base:      base,
		seq:       e.published.Add(1),
		edges:     frozen.NumEdges(),
		locEpoch:  frozen.LocEpoch(),
		topoEpoch: frozen.TopoEpoch(),
		walSeq:    e.walSeq,
	}
	if e.pool != nil {
		e.pool.SetBase(base)
	}
	e.prev = snap
	return snap
}

// Snap is one immutable published view: a frozen graph plus a base searcher
// carrying the core decomposition as of publication, keyed by the location
// and topology epochs it was frozen at. A Snap is safe for any number of
// concurrent readers; Get/Put satisfy the batch package's searcher source,
// so whole batches run pinned to one snapshot.
type Snap struct {
	eng       *Engine
	g         *graph.Graph
	base      *core.Searcher
	seq       uint64
	edges     int
	locEpoch  uint64
	topoEpoch uint64
	walSeq    uint64
}

// Graph returns the frozen graph view. It never mutates; reading it
// concurrently is safe without locks.
func (sn *Snap) Graph() *graph.Graph { return sn.g }

// Seq returns the publication sequence number (1 = the initial snapshot).
func (sn *Snap) Seq() uint64 { return sn.seq }

// Edges returns the undirected edge count at publication.
func (sn *Snap) Edges() int { return sn.edges }

// LocEpoch returns the location epoch the snapshot was frozen at.
func (sn *Snap) LocEpoch() uint64 { return sn.locEpoch }

// TopoEpoch returns the topology epoch the snapshot was frozen at.
func (sn *Snap) TopoEpoch() uint64 { return sn.topoEpoch }

// WalSeq returns the durable log sequence this snapshot's state corresponds
// to: the graph contains the effects of exactly the log records 1..WalSeq
// (0 with no durability hook configured). The checkpointer keys its
// checkpoint files and WAL truncation on it.
func (sn *Snap) WalSeq() uint64 { return sn.walSeq }

// CoreNumber returns the k-core number of v as of this snapshot.
func (sn *Snap) CoreNumber(v graph.V) int { return sn.base.CoreNumber(v) }

// Get returns a pooled worker rebound to this snapshot. Queries on it see
// exactly the published state, whatever the writer does meanwhile. Return
// the worker with Put.
func (sn *Snap) Get() *core.Searcher { return sn.eng.pool.GetFor(sn.base) }

// Put returns a worker obtained from Get.
func (sn *Snap) Put(s *core.Searcher) { sn.eng.pool.Put(s) }
