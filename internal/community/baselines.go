// Package community implements the community-retrieval baselines that
// Section 5.2.2 compares SAC search against:
//
//   - Global — Sozio & Gionis [29]: the connected k-core containing the
//     query vertex, computed over the whole graph.
//   - Local — Cui et al. [7]: local expansion from the query vertex until a
//     subgraph with minimum degree ≥ k emerges; returns much smaller
//     communities than Global without touching the whole graph.
//   - GeoModu — Chen et al. [4]: community detection by modularity
//     maximization over geo-weighted edges (w = 1/d^µ), implemented with the
//     Louvain method; the community containing the query vertex is returned.
//   - RadiusOnly — the strawman of Section 5.2.2 (point 3): every vertex
//     inside O(q, θ), with no structure requirement at all.
package community

import (
	"container/heap"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// Searcher runs the Global and Local community-search baselines against one
// graph, sharing a core decomposition and scratch space across queries. Not
// safe for concurrent use.
type Searcher struct {
	g      *graph.Graph
	cores  []int32
	peeler *kcore.Peeler
	inC    *graph.Marker
	conn   []int32 // scratch: connections into the growing community
}

// NewSearcher prepares the baselines for g (O(m) core decomposition).
func NewSearcher(g *graph.Graph) *Searcher {
	return &Searcher{
		g:      g,
		cores:  kcore.Decompose(g),
		peeler: kcore.NewPeeler(g),
		inC:    graph.NewMarker(g.NumVertices()),
		conn:   make([]int32, g.NumVertices()),
	}
}

// Global returns the connected k-core containing q (the community of [29]),
// or nil when q's core number is below k.
func (s *Searcher) Global(q graph.V, k int) []graph.V {
	return kcore.CommunityOf(s.g, s.cores, q, k)
}

// expandItem is a frontier vertex ordered by how many edges it has into the
// growing community (more first; ties by smaller id for determinism).
type expandItem struct {
	v    graph.V
	conn int32
}

type expandHeap []expandItem

func (h expandHeap) Len() int { return len(h) }
func (h expandHeap) Less(i, j int) bool {
	if h[i].conn != h[j].conn {
		return h[i].conn > h[j].conn
	}
	return h[i].v < h[j].v
}
func (h expandHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *expandHeap) Push(x any)   { *h = append(*h, x.(expandItem)) }
func (h *expandHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Local returns a community with minimum degree ≥ k found by greedy local
// expansion from q (the strategy of [7]): repeatedly add the frontier vertex
// best connected to the current set, and return the first k-core containing
// q that emerges inside the set. Returns nil when no community exists in
// q's connected component.
func (s *Searcher) Local(q graph.V, k int) []graph.V {
	if int(s.cores[q]) < k {
		return nil // q is in no k-core at all; expansion cannot succeed
	}
	g := s.g
	s.inC.Reset()
	for i := range s.conn {
		s.conn[i] = 0
	}
	members := []graph.V{q}
	s.inC.Mark(q)

	var frontier expandHeap
	push := func(v graph.V) {
		for _, u := range g.Neighbors(v) {
			if s.inC.Has(u) {
				continue
			}
			// Only vertices that can belong to a k-core are useful.
			if int(s.cores[u]) < k {
				continue
			}
			s.conn[u]++
			heap.Push(&frontier, expandItem{u, s.conn[u]})
		}
	}
	push(q)
	qDeg := 0
	for len(frontier) > 0 {
		it := heap.Pop(&frontier).(expandItem)
		if s.inC.Has(it.v) || it.conn != s.conn[it.v] {
			continue // stale heap entry
		}
		s.inC.Mark(it.v)
		members = append(members, it.v)
		if g.HasEdge(q, it.v) {
			qDeg++
		}
		push(it.v)
		// Try to finish once the cheap necessary condition holds.
		if qDeg >= k {
			if c := s.peeler.KCoreWithin(members, q, k); c != nil {
				out := make([]graph.V, len(c))
				copy(out, c)
				return out
			}
		}
	}
	// Frontier exhausted: the whole (core-filtered) component is in members.
	if c := s.peeler.KCoreWithin(members, q, k); c != nil {
		out := make([]graph.V, len(c))
		copy(out, c)
		return out
	}
	return nil
}

// RadiusOnly returns every vertex located inside O(q, θ), with no structure
// requirement — the strawman community of Section 5.2.2 used to show that
// locations alone are not enough.
func (s *Searcher) RadiusOnly(q graph.V, theta float64) []graph.V {
	c := geom.Circle{C: s.g.Loc(q), R: theta}
	var out []graph.V
	n := s.g.NumVertices()
	for v := 0; v < n; v++ {
		if c.Contains(s.g.Loc(graph.V(v))) {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// AvgInternalDegree returns the average degree of the given vertices within
// the subgraph they induce (used for the structure-cohesiveness comparison
// of Section 5.2.2).
func AvgInternalDegree(g *graph.Graph, members []graph.V) float64 {
	if len(members) == 0 {
		return 0
	}
	in := graph.NewMarker(g.NumVertices())
	in.MarkAll(members)
	total := 0
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if in.Has(u) {
				total++
			}
		}
	}
	return float64(total) / float64(len(members))
}
