// Package dynamic implements the location-change replay of Section 5.2.3:
// check-in records are split into a warm-up prefix R1 and a replay suffix
// R2; R1 only updates user locations, while every R2 check-in by a tracked
// query user additionally triggers an SAC search at that instant. The
// resulting per-user community timelines feed the CJS/CAO-versus-η decay
// curves of Figure 13 and the moving-user portraits of Figure 2.
package dynamic

import (
	"fmt"

	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

// Snapshot is one community observed for a tracked user at one check-in.
type Snapshot struct {
	Time    float64 // days
	Members []graph.V
	MCC     geom.Circle
}

// SearchFunc runs one SAC query at the current graph state; it returns the
// community members or an error (ErrNoCommunity snapshots are skipped).
type SearchFunc func(q graph.V, k int) ([]graph.V, geom.Circle, error)

// Replay applies the check-in stream to g (mutating vertex locations) and
// returns the community timeline of every tracked user. Check-ins before
// splitTime only move users; from splitTime on, each check-in by a tracked
// user also runs search. The graph is left at its final replayed state.
func Replay(g *graph.Graph, checkins []gen.Checkin, tracked []graph.V, splitTime float64, k int, search SearchFunc) (map[graph.V][]Snapshot, error) {
	isTracked := make(map[graph.V]bool, len(tracked))
	for _, v := range tracked {
		isTracked[v] = true
	}
	out := make(map[graph.V][]Snapshot, len(tracked))
	for i, c := range checkins {
		if i > 0 && c.Time < checkins[i-1].Time {
			return nil, fmt.Errorf("dynamic: check-ins not time sorted at index %d", i)
		}
		g.SetLoc(c.User, c.Loc)
		if c.Time < splitTime || !isTracked[c.User] {
			continue
		}
		members, mcc, err := search(c.User, k)
		if err != nil {
			continue // no community at this instant; Figure 13 skips these
		}
		snap := Snapshot{Time: c.Time, Members: append([]graph.V(nil), members...), MCC: mcc}
		out[c.User] = append(out[c.User], snap)
	}
	return out, nil
}

// DecayPoint is one (η, average CJS, average CAO) measurement.
type DecayPoint struct {
	EtaDays float64
	CJS     float64
	CAO     float64
	Pairs   int // community pairs averaged
}

// Decay computes the Figure 13 curves: for each η, every user's timeline is
// greedily subsampled so consecutive snapshots are at least η days apart,
// and CJS/CAO are averaged over the consecutive pairs of the subsample.
func Decay(timelines map[graph.V][]Snapshot, etas []float64) []DecayPoint {
	out := make([]DecayPoint, 0, len(etas))
	for _, eta := range etas {
		var cjs, cao []float64
		for _, snaps := range timelines {
			var prev *Snapshot
			for i := range snaps {
				s := &snaps[i]
				if prev == nil {
					prev = s
					continue
				}
				if s.Time-prev.Time < eta {
					continue
				}
				cjs = append(cjs, metrics.CJS(prev.Members, s.Members))
				cao = append(cao, metrics.CAO(prev.MCC, s.MCC))
				prev = s
			}
		}
		out = append(out, DecayPoint{
			EtaDays: eta,
			CJS:     metrics.Mean(cjs),
			CAO:     metrics.Mean(cao),
			Pairs:   len(cjs),
		})
	}
	return out
}
