// Command sacbench regenerates the paper's tables and figures and tracks
// the query hot path's performance trajectory.
//
// Usage:
//
//	sacbench -exp fig10                 # one experiment, quick config
//	sacbench -exp all -scale 0.1 -queries 200 -datasets brightkite,gowalla
//	sacbench -list                      # show available experiment ids
//	sacbench -exp fig12exact -paper     # start from the paper-sized config
//	sacbench -benchjson BENCH_4.json    # machine-readable perf snapshot
//	sacbench -exp fig10 -load g.sacg    # bench a saved graph file
//	sacbench -benchjson BENCH_8.json -scale 1 -gate-parallel 2  # CI scaling gate
//	sacbench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//
// Output goes to stdout; redirect to keep a record alongside EXPERIMENTS.md.
// The -benchjson report records repeated-query ns/op and allocs/op with the
// candidate cache on/off, the cache speedup, batch scaling per worker
// count, edge-churn throughput (incremental core maintenance vs
// re-decomposition), serving throughput (lock-coupled vs snapshot-isolated
// reads under concurrent churn, plus mid-Exact cancellation latency),
// durability costs (WAL append throughput per fsync policy, crash-recovery
// time vs WAL length with and without checkpoint truncation), sharding
// latency, intra-query parallelism (serial vs parallel Exact/Exact+
// across worker counts, shared-oracle batching on/off), and telemetry
// overhead (the instrumented query hot path vs the same path on a nil
// registry), so regressions are visible PR over PR.
//
// -gate-parallel turns the parallelism section into a CI gate: the run
// fails unless the best measured Exact/Exact+ speedup reaches the given
// factor. Machines with fewer than 4 CPUs skip the gate with a log line
// instead of failing — a 1-core runner measuring ~1× is expected physics,
// not a regression. -gate-telemetry fails the run when the measured
// telemetry overhead exceeds the given percentage (5 is the documented
// bar).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"flag"

	"sacsearch/internal/exp"
)

func main() {
	os.Exit(run())
}

// run is main's body behind one normal return path, so the profile-flushing
// defers execute on failures too (os.Exit would skip them).
func run() int {
	var (
		expID     = flag.String("exp", "", "experiment id to run, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		paper     = flag.Bool("paper", false, "start from the paper-sized config (hours) instead of the quick one")
		datasets  = flag.String("datasets", "", "comma-separated dataset names (default from config)")
		scale     = flag.Float64("scale", 0, "dataset scale in (0,1] (0 = config default)")
		queries   = flag.Int("queries", 0, "queries per dataset (0 = config default)")
		k         = flag.Int("k", 0, "default minimum degree (0 = config default)")
		seed      = flag.Int64("seed", 0, "workload seed (0 = config default)")
		load      = flag.String("load", "", "bench a saved binary graph file instead of the dataset presets")
		benchJSON = flag.String("benchjson", "", "write the hot-path perf report as JSON to this file ('-' for stdout)")

		procs         = flag.Int("procs", 0, "set GOMAXPROCS for the run (0 = leave the runtime default, normally all cores)")
		gateParallel  = flag.Float64("gate-parallel", 0, "with -benchjson: fail unless the best parallel Exact/Exact+ speedup reaches this factor (skipped with a log line when NumCPU < 4)")
		gateTelemetry = flag.Float64("gate-telemetry", 0, "with -benchjson: fail when telemetry overhead exceeds this percentage of the uninstrumented hot path")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			}
		}()
	}

	if *load != "" && *datasets != "" {
		fmt.Fprintln(os.Stderr, "sacbench: -load and -datasets are mutually exclusive")
		return 2
	}

	if *list {
		for _, id := range exp.IDs() {
			e := exp.Registry[id]
			fmt.Printf("%-12s %s\n", id, e.Title)
		}
		return 0
	}
	if *expID == "" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "sacbench: -exp or -benchjson is required (try -list)")
		return 2
	}

	cfg := exp.DefaultConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *load != "" {
		cfg.LoadPath = *load
		// One file, one "dataset": experiments iterate cfg.Datasets, so
		// collapse it to a single label the loader will override.
		base := strings.TrimSuffix(filepath.Base(*load), filepath.Ext(*load))
		cfg.Datasets = []string{base}
	}

	if *benchJSON != "" {
		rep, err := exp.Perf(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			return 1
		}
		out := os.Stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			return 1
		}
		if *gateParallel > 0 {
			if code := gate(rep, *gateParallel); code != 0 {
				return code
			}
		}
		if *gateTelemetry > 0 {
			if code := gateOverhead(rep, *gateTelemetry); code != 0 {
				return code
			}
		}
		if *expID == "" {
			return 0
		}
	}

	var err error
	if *expID == "all" {
		err = exp.RunAll(cfg, os.Stdout)
	} else {
		err = exp.Run(*expID, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
		return 1
	}
	return 0
}

// gate enforces -gate-parallel against the report's parallelism section.
// The bar applies to the best speedup either exact algorithm reached; small
// machines skip with an explanatory line so single-core CI runners don't
// fail on physics.
func gate(rep *exp.PerfReport, threshold float64) int {
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(os.Stderr, "sacbench: -gate-parallel %.2g skipped: only %d CPUs (need ≥ 4 for a meaningful scaling gate)\n",
			threshold, runtime.NumCPU())
		return 0
	}
	best := 0.0
	for _, ap := range []*exp.ParallelAlgoPerf{rep.Parallel.Exact, rep.Parallel.ExactPlus} {
		if ap != nil && ap.MaxSpeedup > best {
			best = ap.MaxSpeedup
		}
	}
	if best < threshold {
		fmt.Fprintf(os.Stderr, "sacbench: parallel gate FAILED: best Exact/Exact+ speedup %.2fx < required %.2fx (gomaxprocs %d, numcpu %d)\n",
			best, threshold, runtime.GOMAXPROCS(0), runtime.NumCPU())
		return 1
	}
	fmt.Fprintf(os.Stderr, "sacbench: parallel gate passed: best speedup %.2fx ≥ %.2fx\n", best, threshold)
	return 0
}

// gateOverhead enforces -gate-telemetry: the instrumented query hot path
// must cost no more than the given percentage over the nil-registry run.
func gateOverhead(rep *exp.PerfReport, maxPct float64) int {
	tp := rep.Telemetry
	if tp.OverheadPct > maxPct {
		fmt.Fprintf(os.Stderr, "sacbench: telemetry gate FAILED: overhead %.2f%% > allowed %.2f%% (base %.0f ns/op, instrumented %.0f ns/op)\n",
			tp.OverheadPct, maxPct, tp.BaseNsPerOp, tp.InstrumentedNsPerOp)
		return 1
	}
	fmt.Fprintf(os.Stderr, "sacbench: telemetry gate passed: overhead %.2f%% ≤ %.2f%% (base %.0f ns/op, instrumented %.0f ns/op)\n",
		tp.OverheadPct, maxPct, tp.BaseNsPerOp, tp.InstrumentedNsPerOp)
	return 0
}
