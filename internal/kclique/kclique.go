// Package kclique implements the k-clique structure substrate. The paper
// notes (Sections 1 and 3) that the minimum-degree structure cohesiveness of
// SAC search "can be easily replaced by other metrics like k-truss and
// k-clique"; this package provides the k-clique replacement in the classical
// clique-percolation sense: a k-clique community is the union of all
// k-cliques reachable from one another through adjacent k-cliques, where two
// k-cliques are adjacent when they share k-1 vertices.
//
// Both entry points work online from the query vertex — they explore clique
// space outward from q and never touch parts of the graph the community
// cannot reach, matching the paper's online-search setting.
//
// For k ≤ 2 the definition degenerates gracefully: 2-cliques are edges and
// sharing one vertex is plain connectivity, so the community is q's
// connected component; a 1-clique is a single vertex, so {q} itself
// qualifies.
package kclique

import (
	"encoding/binary"
	"sort"

	"sacsearch/internal/graph"
)

// cliqueKey packs a sorted vertex slice into a comparable map key.
func cliqueKey(c []graph.V) string {
	b := make([]byte, 4*len(c))
	for i, v := range c {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// accept reports whether v may participate in any k-clique of the current
// search: it must be unrestricted (or inside S) and have enough neighbors.
type accept func(v graph.V) bool

// commonNeighbors intersects the sorted neighbor lists of all vertices in
// set, keeping only accepted vertices. dst is reused.
func commonNeighbors(g *graph.Graph, set []graph.V, ok accept, dst []graph.V) []graph.V {
	dst = dst[:0]
	if len(set) == 0 {
		return dst
	}
	for _, w := range g.Neighbors(set[0]) {
		if ok(w) {
			dst = append(dst, w)
		}
	}
	for _, u := range set[1:] {
		if len(dst) == 0 {
			return dst
		}
		nb := g.Neighbors(u)
		keep := dst[:0]
		i, j := 0, 0
		for i < len(dst) && j < len(nb) {
			switch {
			case dst[i] < nb[j]:
				i++
			case dst[i] > nb[j]:
				j++
			default:
				keep = append(keep, dst[i])
				i++
				j++
			}
		}
		dst = keep
	}
	return dst
}

// cliquesContaining enumerates every k-clique of g that contains q, invoking
// emit with a sorted vertex slice (reused between calls — copy to keep).
// Vertices are filtered through ok.
func cliquesContaining(g *graph.Graph, q graph.V, k int, ok accept, emit func(c []graph.V)) {
	if k <= 1 {
		emit([]graph.V{q})
		return
	}
	base := make([]graph.V, 1, k)
	base[0] = q
	var rec func(cands []graph.V)
	scratch := make([][]graph.V, k) // per-depth candidate buffers
	depth := 0
	rec = func(cands []graph.V) {
		if len(base) == k {
			c := append([]graph.V(nil), base...)
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			emit(c)
			return
		}
		need := k - len(base)
		for i, v := range cands {
			if len(cands)-i < need {
				return // not enough candidates left
			}
			base = append(base, v)
			// Next candidates: those after v that are adjacent to v too.
			depth++
			if scratch[depth] == nil {
				scratch[depth] = make([]graph.V, 0, len(cands))
			}
			next := scratch[depth][:0]
			nb := g.Neighbors(v)
			a, b := i+1, 0
			for a < len(cands) && b < len(nb) {
				switch {
				case cands[a] < nb[b]:
					a++ // cands[a] is not adjacent to v
				case cands[a] > nb[b]:
					b++
				default:
					next = append(next, cands[a])
					a++
					b++
				}
			}
			scratch[depth] = next
			rec(next)
			depth--
			base = base[:len(base)-1]
		}
	}
	first := make([]graph.V, 0, g.Degree(q))
	for _, v := range g.Neighbors(q) {
		if ok(v) {
			first = append(first, v)
		}
	}
	rec(first)
}

// percolate runs the clique-space BFS: starting from every k-clique
// containing q, repeatedly move to k-cliques sharing k-1 vertices, and
// return the union of member vertices (BFS discovery order), or nil when q
// is in no k-clique.
func percolate(g *graph.Graph, q graph.V, k int, ok accept) []graph.V {
	if k <= 1 {
		return []graph.V{q}
	}
	if k == 2 {
		return componentOf(g, q, ok)
	}
	seen := make(map[string]bool)
	var queue [][]graph.V
	cliquesContaining(g, q, k, ok, func(c []graph.V) {
		key := cliqueKey(c)
		if !seen[key] {
			seen[key] = true
			queue = append(queue, append([]graph.V(nil), c...))
		}
	})
	if len(queue) == 0 {
		return nil
	}
	inComm := graph.NewMarker(g.NumVertices())
	var members []graph.V
	addMembers := func(c []graph.V) {
		for _, v := range c {
			if !inComm.Has(v) {
				inComm.Mark(v)
				members = append(members, v)
			}
		}
	}
	sub := make([]graph.V, 0, k-1)
	next := make([]graph.V, k)
	var common []graph.V
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		addMembers(c)
		// Each (k-1)-subset of c, i.e. c minus one member.
		for skip := 0; skip < k; skip++ {
			sub = sub[:0]
			for i, v := range c {
				if i != skip {
					sub = append(sub, v)
				}
			}
			common = commonNeighbors(g, sub, ok, common)
			for _, w := range common {
				if w == c[skip] {
					continue // reconstructs c itself
				}
				// New clique = sub + {w}, kept sorted by insertion.
				next = next[:0]
				inserted := false
				for _, v := range sub {
					if !inserted && w < v {
						next = append(next, w)
						inserted = true
					}
					next = append(next, v)
				}
				if !inserted {
					next = append(next, w)
				}
				key := cliqueKey(next)
				if !seen[key] {
					seen[key] = true
					queue = append(queue, append([]graph.V(nil), next...))
				}
			}
		}
	}
	return members
}

// componentOf returns q's connected component over accepted vertices, or
// nil when q has no accepted neighbor (it is then in no 2-clique).
func componentOf(g *graph.Graph, q graph.V, ok accept) []graph.V {
	hasAccepted := false
	for _, u := range g.Neighbors(q) {
		if ok(u) {
			hasAccepted = true
			break
		}
	}
	if !hasAccepted {
		return nil
	}
	visited := graph.NewMarker(g.NumVertices())
	visited.Mark(q)
	out := []graph.V{q}
	for head := 0; head < len(out); head++ {
		for _, u := range g.Neighbors(out[head]) {
			if ok(u) && !visited.Has(u) {
				visited.Mark(u)
				out = append(out, u)
			}
		}
	}
	return out
}

// CommunityOf returns the vertices of the k-clique community containing q in
// the whole graph, or nil when q belongs to no k-clique. Vertices with
// degree < k-1 are skipped up front (they cannot be in any k-clique).
func CommunityOf(g *graph.Graph, q graph.V, k int) []graph.V {
	if k <= 1 {
		return []graph.V{q}
	}
	ok := func(v graph.V) bool { return g.Degree(v) >= k-1 }
	if !ok(q) {
		return nil
	}
	return percolate(g, q, k, ok)
}

// Checker answers restricted k-clique feasibility queries, mirroring
// kcore.Peeler and ktruss.Checker: given candidate set S and query q, return
// the k-clique community of G[S] containing q, or nil. It holds scratch
// space; not safe for concurrent use.
type Checker struct {
	g   *graph.Graph
	inS *graph.Marker
}

// NewChecker creates a Checker for g.
func NewChecker(g *graph.Graph) *Checker {
	return &Checker{g: g, inS: graph.NewMarker(g.NumVertices())}
}

// SetGraph rebinds the Checker to another graph with the same vertex count
// (snapshot serving hands workers freshly published clones). A different
// vertex count panics.
func (c *Checker) SetGraph(g *graph.Graph) {
	if g.NumVertices() != c.inS.Len() {
		panic("kclique: SetGraph with a different vertex count")
	}
	c.g = g
}

// KCliqueWithin returns the vertices of the k-clique community of G[S]
// containing q, or nil. The returned slice is freshly allocated per call
// (clique percolation has no incremental scratch worth keeping).
func (c *Checker) KCliqueWithin(S []graph.V, q graph.V, k int) []graph.V {
	c.inS.Reset()
	qSeen := false
	for _, v := range S {
		c.inS.Mark(v)
		if v == q {
			qSeen = true
		}
	}
	if !qSeen {
		return nil
	}
	if k <= 1 {
		return []graph.V{q}
	}
	ok := func(v graph.V) bool { return c.inS.Has(v) }
	return percolate(c.g, q, k, ok)
}

// CountCliques returns the number of distinct k-cliques containing q —
// exposed for tests and for workload characterization.
func CountCliques(g *graph.Graph, q graph.V, k int) int {
	if k <= 1 {
		return 1
	}
	count := 0
	seen := make(map[string]bool)
	cliquesContaining(g, q, k, func(v graph.V) bool { return true }, func(c []graph.V) {
		key := cliqueKey(c)
		if !seen[key] {
			seen[key] = true
			count++
		}
	})
	return count
}
