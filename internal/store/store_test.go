package store

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/wal"
)

// testGraph plants spatial cliques wired with a few bridges — every vertex
// has a tight community for k up to 4, and the builder is deterministic so
// tests can rebuild the identical pristine graph as a reference.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(17))
	const nc, cs = 8, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	for c := 0; c < nc-1; c++ {
		b.AddEdge(graph.V(c*6), graph.V((c+1)*6))
	}
	return b.Build()
}

// churnEvent is one logical write the tests drive through a store; only
// events that changed state (every check-in, edge toggles that reported
// changed) are recorded, in sequence order, so the test can rebuild the
// exact graph any WAL prefix describes.
type churnEvent struct {
	checkin bool
	v       graph.V
	loc     geom.Point
	u, w    graph.V
	insert  bool
}

// driveChurn applies n deterministic mixed events (from seed) through st,
// returning the state-changing ones in WAL order.
func driveChurn(t *testing.T, st *Store, seed int64, n int) []churnEvent {
	t.Helper()
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(seed))
	nv := st.Current().Graph().NumVertices()
	var changed []churnEvent
	for i := 0; i < n; i++ {
		if rnd.Intn(3) < 2 {
			ev := churnEvent{checkin: true, v: graph.V(rnd.Intn(nv)),
				loc: geom.Point{X: rnd.Float64(), Y: rnd.Float64()}}
			if err := st.CheckIn(ctx, ev.v, ev.loc); err != nil {
				t.Fatalf("check-in %d: %v", i, err)
			}
			changed = append(changed, ev)
		} else {
			ev := churnEvent{u: graph.V(rnd.Intn(nv)), w: graph.V(rnd.Intn(nv)), insert: rnd.Intn(2) == 0}
			if ev.u == ev.w {
				continue
			}
			did, err := st.UpdateEdge(ctx, ev.u, ev.w, ev.insert)
			if err != nil {
				t.Fatalf("edge %d: %v", i, err)
			}
			if did {
				changed = append(changed, ev)
			}
		}
	}
	return changed
}

// refGraph rebuilds the graph that the first n state-changing events
// produce, from the pristine test graph.
func refGraph(t *testing.T, events []churnEvent, n int) *graph.Graph {
	t.Helper()
	g := testGraph()
	for i := 0; i < n; i++ {
		ev := events[i]
		if ev.checkin {
			g.SetLoc(ev.v, ev.loc)
			continue
		}
		var did bool
		if ev.insert {
			did = g.AddEdge(ev.u, ev.w)
		} else {
			did = g.RemoveEdge(ev.u, ev.w)
		}
		if !did {
			t.Fatalf("reference replay: event %d (%+v) was a no-op", i, ev)
		}
	}
	return g
}

// graphsEqual compares topology and locations exactly.
func graphsEqual(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size (%d,%d) vs (%d,%d)", label,
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.V(v)), b.Neighbors(graph.V(v))
		if len(na) != len(nb) {
			t.Fatalf("%s: vertex %d degree %d vs %d", label, v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("%s: vertex %d adjacency differs", label, v)
			}
		}
		if a.Loc(graph.V(v)) != b.Loc(graph.V(v)) {
			t.Fatalf("%s: vertex %d location differs", label, v)
		}
	}
}

func TestOpenEmptyDirWithoutInit(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("empty dir without Init opened")
	}
}

func TestBootstrapCloseReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph()})
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Recovered || s.ReplayedRecords != 0 || s.FsyncPolicy != "always" {
		t.Fatalf("bootstrap stats = %+v", s)
	}
	events := driveChurn(t, st, 1, 60)
	walSeq := st.Current().WalSeq()
	if walSeq != uint64(len(events)) {
		t.Fatalf("WalSeq %d, %d state-changing events", walSeq, len(events))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen needs no Init: the checkpoint is the state.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s := st2.Stats()
	if !s.Recovered {
		t.Fatalf("reopen stats = %+v, want Recovered", s)
	}
	// Clean shutdown checkpointed the final state: nothing to replay.
	if s.ReplayedRecords != 0 {
		t.Fatalf("clean reopen replayed %d records", s.ReplayedRecords)
	}
	if s.WalLastSeq != walSeq || s.LastCheckpointSeq != walSeq {
		t.Fatalf("sequences after clean reopen: %+v, want %d", s, walSeq)
	}
	graphsEqual(t, "clean reopen", st2.Current().Graph(), refGraph(t, events, len(events)))

	// Writes continue on the recovered chain, monotonically.
	more := driveChurn(t, st2, 2, 10)
	if got := st2.Current().WalSeq(); got != walSeq+uint64(len(more)) {
		t.Fatalf("WalSeq after resume = %d, want %d", got, walSeq+uint64(len(more)))
	}
}

func TestCrashRecoveryReplaysWal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 3, 50)
	st.Crash()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	s := st2.Stats()
	// No checkpoint ran after bootstrap, so recovery replays the whole WAL.
	if s.ReplayedRecords != len(events) {
		t.Fatalf("replayed %d records, want %d", s.ReplayedRecords, len(events))
	}
	graphsEqual(t, "crash recovery", st2.Current().Graph(), refGraph(t, events, len(events)))
}

func TestCheckpointTruncatesWalAndBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Init:               testGraph(),
		SegmentBytes:       512, // force rotation every ~14 records
		CheckpointEvents:   32,
		CheckpointInterval: -1,
	}
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 4, 300)
	// The event-count trigger is asynchronous; force the final one so the
	// assertion below is deterministic.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.LastCheckpointSeq != uint64(len(events)) {
		t.Fatalf("checkpoint seq %d, want %d", s.LastCheckpointSeq, len(events))
	}
	// ~21 segments were written; truncation must have removed the covered
	// prefix (everything before the previous retained checkpoint).
	if s.WalSegments > 8 {
		t.Fatalf("WAL still holds %d segments after checkpointing", s.WalSegments)
	}
	st.Crash()

	st2, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	s2 := st2.Stats()
	// Recovery starts from the newest checkpoint: nothing newer was written.
	if s2.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records, want 0 (checkpoint covers all)", s2.ReplayedRecords)
	}
	graphsEqual(t, "post-truncation recovery", st2.Current().Graph(), refGraph(t, events, len(events)))
}

func TestWalWithoutCheckpointFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]wal.Record{{Kind: wal.KindCheckin, V: 1, Loc: geom.Point{X: 0.5, Y: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{Init: testGraph()})
	if err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("WAL without checkpoint: err = %v", err)
	}
}

func TestForeignWalFailsLoudly(t *testing.T) {
	// A WAL recorded against a bigger graph must not replay onto this one.
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CheckIn(context.Background(), 2, geom.Point{X: 0.1, Y: 0.2}); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	// Forge a record that moves a vertex the checkpointed graph lacks.
	l, err := wal.Open(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]wal.Record{{Kind: wal.KindCheckin, V: 100000, Loc: geom.Point{X: 0.5, Y: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("foreign WAL record replayed silently")
	}
}

func TestFsyncPolicySurvivesProcessCrash(t *testing.T) {
	// All three policies survive a process kill on the same machine (the
	// page cache holds unsynced appends); they differ only under power
	// loss, which a test cannot inject. This pins that interval/never are
	// not dropping records on the floor before they even reach the kernel.
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{Init: testGraph(), Fsync: p, CheckpointInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			events := driveChurn(t, st, 5, 25)
			st.Crash()
			st2, err := Open(dir, Options{Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			graphsEqual(t, string(p), st2.Current().Graph(), refGraph(t, events, len(events)))
		})
	}
}

func TestDoubleCloseAndStatsRace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph(), CheckpointEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = st.Stats()
		}
	}()
	driveChurn(t, st, 6, 50)
	<-done
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleTempCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph()})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 7, 20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-checkpoint leaves a .tmp; it must not confuse recovery.
	tmp := filepath.Join(dir, ckptName(9999)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	graphsEqual(t, "tmp ignored", st2.Current().Graph(), refGraph(t, events, len(events)))
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp not cleaned up")
	}
}

// TestDurableQueriesServe sanity-checks that queries run against a
// recovered store exactly like against any engine.
func TestDurableQueriesServe(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph()})
	if err != nil {
		t.Fatal(err)
	}
	driveChurn(t, st, 8, 30)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap := st2.Current()
	w := snap.Get()
	defer snap.Put(w)
	if _, err := w.AppFast(0, 3, 0.5); err != nil && err != core.ErrNoCommunity {
		t.Fatalf("query on recovered store: %v", err)
	}
}
