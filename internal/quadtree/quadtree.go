// Package quadtree implements the region-quadtree cell machinery AppAcc uses
// to refine anchor points level by level (Section 4.4; Finkel–Bentley [13]).
// The tree is never materialized: AppAcc walks it breadth-first, so the
// package exposes square cells, their children, and a Frontier that expands
// one level at a time under a pruning predicate.
package quadtree

import "sacsearch/internal/geom"

// Cell is an axis-aligned square: center C, half-width Half. Its anchor
// point (the paper's term) is the center.
type Cell struct {
	C    geom.Point
	Half float64
	// InfeasibleR is the largest radius r known such that no feasible
	// solution fits in a circle of radius r centered at an ancestor anchor,
	// translated to this cell's center (Pruning2 bookkeeping, Section 4.4).
	// Zero means "nothing known".
	InfeasibleR float64
}

// Root returns the cell covering the square of the given half-width centered
// at c (AppAcc's root has half-width γ, i.e. width 2γ).
func Root(c geom.Point, half float64) Cell {
	return Cell{C: c, Half: half}
}

// Width returns the edge length of the cell (the paper's β for cells at the
// level where β equals the width).
func (c Cell) Width() float64 { return 2 * c.Half }

// Children returns the four equal quadrants of the cell. Each child's
// InfeasibleR is inherited, reduced by the center-to-center distance
// (√2·Half/2): if no feasible solution fits in O(parent, r), none fits in
// O(child, r − |parent,child|).
func (c Cell) Children() [4]Cell {
	h := c.Half / 2
	inherit := c.InfeasibleR - sqrt2*h // |parent center, child center| = √2·h
	if inherit < 0 {
		inherit = 0
	}
	return [4]Cell{
		{C: geom.Point{X: c.C.X - h, Y: c.C.Y - h}, Half: h, InfeasibleR: inherit},
		{C: geom.Point{X: c.C.X + h, Y: c.C.Y - h}, Half: h, InfeasibleR: inherit},
		{C: geom.Point{X: c.C.X - h, Y: c.C.Y + h}, Half: h, InfeasibleR: inherit},
		{C: geom.Point{X: c.C.X + h, Y: c.C.Y + h}, Half: h, InfeasibleR: inherit},
	}
}

// Contains reports whether p lies inside the closed square.
func (c Cell) Contains(p geom.Point) bool {
	return p.X >= c.C.X-c.Half-geom.Eps && p.X <= c.C.X+c.Half+geom.Eps &&
		p.Y >= c.C.Y-c.Half-geom.Eps && p.Y <= c.C.Y+c.Half+geom.Eps
}

// CoverRadius returns the distance from the cell center to its corners,
// √2·Half: any point of the cell is within this distance of the anchor. The
// paper writes it √2·β/2 for a cell of width β.
func (c Cell) CoverRadius() float64 { return sqrt2 * c.Half }

const sqrt2 = 1.4142135623730951

// Frontier is one breadth-first level of an implicit region quadtree.
type Frontier struct {
	cells []Cell
}

// NewFrontier starts a frontier at the four children of the root, matching
// AppAcc's initial achList (Algorithm 4, line 4).
func NewFrontier(root Cell) *Frontier {
	ch := root.Children()
	return &Frontier{cells: ch[:]}
}

// Cells returns the current level's cells; the slice is owned by the
// Frontier and valid until Expand.
func (f *Frontier) Cells() []Cell { return f.cells }

// Len returns the number of cells at the current level.
func (f *Frontier) Len() int { return len(f.cells) }

// Half returns the half-width of the current level's cells (0 when empty).
func (f *Frontier) Half() float64 {
	if len(f.cells) == 0 {
		return 0
	}
	return f.cells[0].Half
}

// SetInfeasible records Pruning2 knowledge for the cell at index i.
func (f *Frontier) SetInfeasible(i int, r float64) {
	if r > f.cells[i].InfeasibleR {
		f.cells[i].InfeasibleR = r
	}
}

// Expand replaces the frontier with the children of the cells for which keep
// returns true. It returns the number of kept parents.
func (f *Frontier) Expand(keep func(Cell) bool) int {
	next := make([]Cell, 0, 4*len(f.cells))
	kept := 0
	for _, c := range f.cells {
		if !keep(c) {
			continue
		}
		kept++
		ch := c.Children()
		next = append(next, ch[:]...)
	}
	f.cells = next
	return kept
}
