package shard

import (
	"sync"

	"sacsearch/internal/graph"
)

// Cert decides, per query, whether a shard can answer alone — the exactness
// certificate behind the router's fast path.
//
// Every registered k-core algorithm's answer is a pure function of the
// global candidate set X = the connected component of q in the k-core of the
// whole graph, X's induced edges, and X's member locations. A shard only
// sees its own subgraph, so it cannot compute X directly — but it can bound
// it. The optimistic peel treats ghost vertices as unpeelable (their true
// degree includes edges this shard cannot see, so their survival must be
// assumed) and peels owned vertices below degree k as usual. Two facts make
// this a certificate:
//
//  1. Soundness of death: a vertex removed by the optimistic peel has fewer
//     than k neighbors even if every unseen edge survives, so it is not in
//     the global k-core. If q dies, ErrNoCommunity is the exact global
//     answer.
//  2. Soundness of containment: if no vertex in q's surviving owned
//     component has a ghost neighbor, the component is self-supporting —
//     every member is owned, every member's full adjacency is local, and
//     every member keeps degree ≥ k using only in-component edges. The
//     component therefore equals X, all its locations are
//     owner-authoritative, and the stock local Search result is identical
//     to a single-engine reference. Conversely, if any global candidate
//     lived outside this shard, the walk from q to it inside X would step
//     onto a ghost neighbor of a surviving member, so the certificate
//     correctly fails.
//
// When the certificate fails, Expand drives the router's scatter-gather: it
// returns the owned members of the seed components (each with authoritative
// location and full adjacency, reported by its owner) plus the frontier
// ghosts bordering them, which the router then seeds at their owning shards
// until the closure stops growing. The union is a superset of X with every
// induced edge covered, so a reference Search over the assembled subgraph
// returns the exact global answer.
//
// The peel is purely topological, so cached state is keyed on the snapshot's
// topology epoch and survives unlimited location churn.
type Cert struct {
	g  *graph.Graph
	sv *Serving

	mu   sync.Mutex
	perK map[int]*kState
}

// kState is one k's optimistic-peel outcome. Components cover owned
// survivors only — a ghost is not a component member (it can border several
// components at once) but flips ghosty on every component it touches.
type kState struct {
	comp   []int32 // per vertex: component id, -1 = non-owned or peeled
	ghosty []bool  // per component: some member has a ghost neighbor
}

// NewCert prepares certificates for one immutable (frozen snapshot) shard
// graph. Concurrent callers share the lazily built per-k states.
func NewCert(g *graph.Graph, sv *Serving) *Cert {
	return &Cert{g: g, sv: sv, perK: make(map[int]*kState)}
}

func (c *Cert) stateFor(k int) *kState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.perK[k]; ok {
		return st
	}
	st := c.build(k)
	c.perK[k] = st
	return st
}

// build runs the optimistic peel for k and labels the surviving owned
// components.
func (c *Cert) build(k int) *kState {
	n := c.g.NumVertices()
	deg := make([]int32, n)
	removed := make([]bool, n)
	queue := make([]graph.V, 0, 64)
	owner := c.sv.Map.Owner
	id := uint16(c.sv.ID)
	for v := 0; v < n; v++ {
		if owner[v] != id {
			continue
		}
		deg[v] = int32(c.g.Degree(graph.V(v)))
		if deg[v] < int32(k) {
			removed[v] = true
			queue = append(queue, graph.V(v))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range c.g.Neighbors(u) {
			if owner[w] != id || removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < int32(k) {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}

	st := &kState{comp: make([]int32, n)}
	for v := range st.comp {
		st.comp[v] = -1
	}
	var stack []graph.V
	next := int32(0)
	for v := 0; v < n; v++ {
		if owner[v] != id || removed[v] || st.comp[v] != -1 {
			continue
		}
		cid := next
		next++
		ghost := false
		st.comp[v] = cid
		stack = append(stack[:0], graph.V(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range c.g.Neighbors(u) {
				if owner[w] != id {
					ghost = true // any materialized non-owned neighbor is a ghost
					continue
				}
				if !removed[w] && st.comp[w] == -1 {
					st.comp[w] = cid
					stack = append(stack, w)
				}
			}
		}
		st.ghosty = append(st.ghosty, ghost)
	}
	return st
}

// Contained reports whether q survives this shard's optimistic k-peel
// (alive) and, if so, whether its component is ghost-free (certified): a
// certified answer from the stock local searcher is exactly the global one,
// and a dead q is certified ErrNoCommunity.
func (c *Cert) Contained(q graph.V, k int) (alive, certified bool) {
	st := c.stateFor(k)
	cid := st.comp[q]
	if cid < 0 {
		return false, true
	}
	return true, !st.ghosty[cid]
}

// Expand returns the owned members of the optimistic k-core components
// containing the given seeds, plus the frontier ghosts bordering those
// components. Seeds that died in the peel (or are not owned here)
// contribute nothing — a vertex dead under the optimistic peel is globally
// dead. Members come back in ascending vertex order.
func (c *Cert) Expand(seeds []graph.V, k int) (members, frontier []graph.V) {
	st := c.stateFor(k)
	want := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		if int(s) < 0 || int(s) >= len(st.comp) {
			continue
		}
		if cid := st.comp[s]; cid >= 0 {
			want[cid] = true
		}
	}
	if len(want) == 0 {
		return nil, nil
	}
	owner := c.sv.Map.Owner
	id := uint16(c.sv.ID)
	inFrontier := make(map[graph.V]bool)
	for v := 0; v < len(st.comp); v++ {
		cid := st.comp[v]
		if cid < 0 || !want[cid] {
			continue
		}
		members = append(members, graph.V(v))
		for _, w := range c.g.Neighbors(graph.V(v)) {
			if owner[w] != id && !inFrontier[w] {
				inFrontier[w] = true
				frontier = append(frontier, w)
			}
		}
	}
	return members, frontier
}
