// Failover drill: boot a real leader + read-replica pair as separate
// sacserver processes, drive traffic through the read/write-splitting
// client.Set, then kill the leader with SIGKILL and verify the replica
// keeps answering reads within the staleness bound. The drill continues
// through the full operational story: restart the leader from its data
// directory (kill -9 durability), watch the replica reconnect and catch
// up, and finally fence the leader with the one-shot `sacserver -fence`
// and verify it rejects writes with the read_only error code.
//
// This is the two-process integration test CI runs against the shipped
// binary (see .github/workflows/ci.yml):
//
//	go build -o /tmp/sacserver ./cmd/sacserver
//	go run ./examples/failover -sacserver /tmp/sacserver
//
// Without -sacserver the drill builds the binary itself, so a plain
// `go run ./examples/failover` from the module root also works. The
// drill exits 0 only if every step held; any violated expectation is
// fatal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"sacsearch/client"
)

var (
	binPath    = flag.String("sacserver", "", "path to a built sacserver binary (empty = build it into a temp dir)")
	leaderAPI  = flag.String("leader-addr", "127.0.0.1:18090", "leader HTTP address")
	leaderRepl = flag.String("leader-replication", "127.0.0.1:18091", "leader WAL-shipping address")
	replicaAPI = flag.String("replica-addr", "127.0.0.1:18092", "replica HTTP address")
)

func main() {
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if err := run(ctx); err != nil {
		log.Fatalf("drill: FAIL: %v", err)
	}
	fmt.Println("drill: PASS — node loss survived, reads never stopped, fencing held")
}

func run(ctx context.Context) error {
	bin := *binPath
	scratch, err := os.MkdirTemp("", "sacfailover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	if bin == "" {
		bin = filepath.Join(scratch, "sacserver")
		log.Printf("drill: building %s", bin)
		build := exec.Command("go", "build", "-o", bin, "./cmd/sacserver")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building sacserver: %w", err)
		}
	}
	dataDir := filepath.Join(scratch, "leader-data")

	leaderURL := "http://" + *leaderAPI
	replicaURL := "http://" + *replicaAPI
	leaderArgs := []string{
		"-dataset", "syn1", "-scale", "0.02",
		"-data-dir", dataDir,
		"-addr", *leaderAPI,
		"-listen-replication", *leaderRepl,
	}

	// --- boot -----------------------------------------------------------
	leader, err := start("leader", bin, leaderArgs...)
	if err != nil {
		return err
	}
	defer leader.kill()
	if err := waitReady(ctx, leaderURL); err != nil {
		return fmt.Errorf("leader never became ready: %w", err)
	}

	replica, err := start("replica", bin,
		"-replicate-from", *leaderRepl,
		"-addr", *replicaAPI,
		"-staleness-bound", "10s")
	if err != nil {
		return err
	}
	defer replica.kill()
	if err := waitReady(ctx, replicaURL); err != nil {
		return fmt.Errorf("replica never became ready (initial sync): %w", err)
	}
	log.Printf("drill: leader %s and replica %s are both ready", *leaderAPI, *replicaAPI)

	// Leader listed first: that is the initial write preference.
	set, err := client.NewSet([]string{leaderURL, replicaURL}, client.WithRetries(0))
	if err != nil {
		return err
	}
	leaderCl, replicaCl := set.Clients()[0], set.Clients()[1]

	// --- write through the set, observe on the replica ------------------
	for i := int64(0); i < 20; i++ {
		if err := set.CheckIn(ctx, i, 0.05+float64(i)*0.01, 0.5); err != nil {
			return fmt.Errorf("write %d through the set: %w", i, err)
		}
	}
	if err := set.CheckIn(ctx, 1, 0.123, 0.456); err != nil {
		return err
	}
	if err := waitVertexAt(ctx, replicaCl, 1, 0.123, 0.456); err != nil {
		return fmt.Errorf("marker write never replicated: %w", err)
	}
	log.Printf("drill: 21 writes accepted by the leader and visible on the replica")

	// Round-robin reads touch both endpoints while both are alive.
	for i := 0; i < 4; i++ {
		if _, err := set.Query(ctx, client.Query{Q: 3, K: 3, Algo: "appfast"}); err != nil &&
			!errors.Is(err, client.ErrNoCommunity) {
			return fmt.Errorf("query with both nodes up: %w", err)
		}
	}

	// --- kill the leader ------------------------------------------------
	log.Printf("drill: killing the leader (SIGKILL)")
	leader.kill()

	// Reads keep working: the set fails over to the replica, which is
	// within its staleness bound and must not shed.
	for i := 0; i < 4; i++ {
		if _, err := set.Query(ctx, client.Query{Q: 3, K: 3, Algo: "appfast"}); err != nil &&
			!errors.Is(err, client.ErrNoCommunity) {
			return fmt.Errorf("query after leader death (read failover): %w", err)
		}
	}
	if v, err := replicaCl.Vertex(ctx, 1); err != nil {
		return fmt.Errorf("replica read after leader death: %w", err)
	} else if v.X != 0.123 || v.Y != 0.456 {
		return fmt.Errorf("replica lost the marker write: got (%v,%v)", v.X, v.Y)
	}
	log.Printf("drill: replica still serves reads after leader death")

	// Writes must fail: nobody in the set accepts them.
	if err := set.CheckIn(ctx, 2, 0.9, 0.9); err == nil {
		return errors.New("a write was accepted with no leader alive")
	} else {
		log.Printf("drill: writes correctly refused without a leader: %v", err)
	}

	// The replica notices the dead leader and reports itself degraded.
	if err := waitHealth(ctx, replicaCl, func(h *client.Health) bool {
		return h.Role == "replica" && h.Status == "degraded"
	}); err != nil {
		return fmt.Errorf("replica health never turned degraded: %w", err)
	}

	// --- restart the leader from its data directory ---------------------
	log.Printf("drill: restarting the leader from %s", dataDir)
	leader, err = start("leader", bin, leaderArgs...)
	if err != nil {
		return err
	}
	defer leader.kill()
	if err := waitReady(ctx, leaderURL); err != nil {
		return fmt.Errorf("restarted leader never became ready: %w", err)
	}
	if v, err := leaderCl.Vertex(ctx, 1); err != nil {
		return err
	} else if v.X != 0.123 || v.Y != 0.456 {
		return fmt.Errorf("leader lost the marker write across kill -9: got (%v,%v)", v.X, v.Y)
	}

	// The set's sticky writer still points at the leader slot; the replica
	// reconnects on its own backoff and replays the new write.
	if err := set.CheckIn(ctx, 1, 0.321, 0.654); err != nil {
		return fmt.Errorf("write after leader restart: %w", err)
	}
	if err := waitVertexAt(ctx, replicaCl, 1, 0.321, 0.654); err != nil {
		return fmt.Errorf("replica never caught up after reconnect: %w", err)
	}
	log.Printf("drill: leader recovered, replica reconnected and caught up")

	// --- fence the leader -----------------------------------------------
	log.Printf("drill: fencing the leader via one-shot -fence")
	fence := exec.Command(bin, "-fence", *leaderRepl)
	fence.Stdout, fence.Stderr = os.Stdout, os.Stderr
	if err := fence.Run(); err != nil {
		return fmt.Errorf("sacserver -fence: %w", err)
	}
	var apiErr *client.APIError
	if err := leaderCl.CheckIn(ctx, 2, 0.7, 0.7); !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
		return fmt.Errorf("fenced leader should refuse writes with read_only, got: %v", err)
	}
	if err := waitHealth(ctx, leaderCl, func(h *client.Health) bool {
		// The leader's own epoch stays put; the epoch that deposed it shows
		// up in the unversioned fencedBy field.
		var fencedBy uint64
		if raw, ok := h.Extra["fencedBy"]; ok {
			_ = json.Unmarshal(raw, &fencedBy)
		}
		return h.Status == "readonly" && fencedBy > h.Epoch
	}); err != nil {
		return fmt.Errorf("fenced leader health never turned readonly: %w", err)
	}
	if v, err := leaderCl.Vertex(ctx, 1); err != nil || v.X != 0.321 {
		return fmt.Errorf("fenced leader should still serve reads: %v", err)
	}
	log.Printf("drill: fenced leader rejects writes, still serves reads")
	return nil
}

// proc is one managed sacserver process.
type proc struct {
	name string
	cmd  *exec.Cmd
	dead bool
}

func start(name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	return &proc{name: name, cmd: cmd}, nil
}

// kill SIGKILLs the process and reaps it; safe to call twice.
func (p *proc) kill() {
	if p == nil || p.dead {
		return
	}
	p.dead = true
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// waitReady polls GET /v1/ready until it answers 200.
func waitReady(ctx context.Context, baseURL string) error {
	return poll(ctx, 60*time.Second, func() bool {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/ready", nil)
		if err != nil {
			return false
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

// waitVertexAt polls until vertex v sits at (x, y) — replication caught up.
func waitVertexAt(ctx context.Context, cl *client.Client, v int64, x, y float64) error {
	return poll(ctx, 60*time.Second, func() bool {
		vx, err := cl.Vertex(ctx, v)
		return err == nil && vx.X == x && vx.Y == y
	})
}

// waitHealth polls /v1/health until cond holds.
func waitHealth(ctx context.Context, cl *client.Client, cond func(*client.Health) bool) error {
	return poll(ctx, 60*time.Second, func() bool {
		h, err := cl.Health(ctx)
		return err == nil && cond(h)
	})
}

func poll(ctx context.Context, timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("timed out")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
