// Command sacshard cuts a graph into a sharded topology: a versioned
// shard-map artifact (the deterministic spatial partition) plus one binary
// subgraph per shard, ready for sacserver -shard-id/-shard-map and
// sacrouter.
//
//	sacshard -dataset brightkite -scale 0.05 -shards 2 -out /var/lib/sac/cut
//	sacshard -load graph.bin -shards 4 -out cut/
//
// The cut is deterministic: the same graph and shard count always produce
// byte-identical artifacts, so a re-run (or an independent operator)
// reproduces the topology exactly — the map checksum is how router and
// shards verify they agree.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/shard"
)

func main() {
	var (
		name   = flag.String("dataset", "brightkite", "dataset preset to cut")
		scale  = flag.Float64("scale", 0.05, "dataset scale in (0,1]")
		load   = flag.String("load", "", "cut a saved binary graph file instead of a dataset preset")
		shards = flag.Int("shards", 2, "number of shards")
		out    = flag.String("out", "cut", "output directory (created if missing)")
	)
	flag.Parse()

	datasetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			datasetSet = true
		}
	})
	if *load != "" && datasetSet {
		log.Fatal("sacshard: -load and -dataset are mutually exclusive")
	}

	g, err := buildGraph(*load, *name, *scale)
	if err != nil {
		log.Fatalf("sacshard: %v", err)
	}
	m, err := shard.Partition(g, *shards)
	if err != nil {
		log.Fatalf("sacshard: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("sacshard: %v", err)
	}

	mapPath := filepath.Join(*out, "shardmap.bin")
	if err := writeFile(mapPath, func(w *bufio.Writer) error { return m.WriteMap(w) }); err != nil {
		log.Fatalf("sacshard: %v", err)
	}
	fmt.Printf("sacshard: %s — %d vertices, %d edges (%d cross-shard), checksum %08x\n",
		mapPath, m.N, m.Edges, m.CrossEdges, m.Checksum())

	for id := 0; id < m.Shards; id++ {
		sub, err := shard.Subgraph(g, m, id)
		if err != nil {
			log.Fatalf("sacshard: shard %d: %v", id, err)
		}
		path := filepath.Join(*out, fmt.Sprintf("shard-%d.bin", id))
		if err := writeFile(path, func(w *bufio.Writer) error { return graph.WriteBinary(w, sub) }); err != nil {
			log.Fatalf("sacshard: %v", err)
		}
		owned, ghosts := countGhosts(sub, m, id)
		fmt.Printf("sacshard: %s — shard %d owns %d vertices (%d ghosts)\n", path, id, owned, ghosts)
	}
}

// writeFile writes one artifact through a buffered writer with a full
// flush-close-check chain, so a short write cannot pass silently.
func writeFile(path string, write func(w *bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func countGhosts(sub *graph.Graph, m *shard.Map, id int) (owned, ghosts int) {
	sv, err := shard.NewServing(m, id)
	if err != nil {
		return 0, 0
	}
	return sv.Counts(sub)
}

func buildGraph(load, name string, scale float64) (*graph.Graph, error) {
	if load == "" {
		ds, err := dataset.Load(name, scale)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", load, err)
	}
	return g, nil
}
