package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// rebuildFrom constructs a from-scratch graph with g's current topology and
// locations — the differential reference after churn.
func rebuildFrom(g *graph.Graph) *graph.Graph {
	n := g.NumVertices()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLoc(graph.V(v), g.Loc(graph.V(v)))
		for _, u := range g.Neighbors(graph.V(v)) {
			if u > graph.V(v) {
				b.AddEdge(graph.V(v), u)
			}
		}
	}
	return b.Build()
}

// algoRuns is the five-algorithm differential battery.
var algoRuns = []struct {
	name string
	run  func(s *Searcher, q graph.V, k int) (*Result, error)
}{
	{"AppFast", func(s *Searcher, q graph.V, k int) (*Result, error) { return s.AppFast(q, k, 0.5) }},
	{"AppInc", func(s *Searcher, q graph.V, k int) (*Result, error) { return s.AppInc(q, k) }},
	{"AppAcc", func(s *Searcher, q graph.V, k int) (*Result, error) { return s.AppAcc(q, k, 0.3) }},
	{"Exact", func(s *Searcher, q graph.V, k int) (*Result, error) { return s.Exact(q, k) }},
	{"ExactPlus", func(s *Searcher, q graph.V, k int) (*Result, error) { return s.ExactPlus(q, k, 0.2) }},
}

// requireSameAnswers runs the battery on both searchers for (q, k) and fails
// on any divergence, infeasibility mismatches included.
func requireSameAnswers(t *testing.T, warm, cold *Searcher, q graph.V, k int, tag string) {
	t.Helper()
	for _, algo := range algoRuns {
		rw, errW := algo.run(warm, q, k)
		rc, errC := algo.run(cold, q, k)
		if (errW == nil) != (errC == nil) {
			t.Fatalf("%s %s q=%d: warm err %v, cold err %v", tag, algo.name, q, errW, errC)
		}
		if errW != nil {
			if !errors.Is(errW, ErrNoCommunity) {
				t.Fatalf("%s %s q=%d: %v", tag, algo.name, q, errW)
			}
			continue
		}
		if !membersEqual(rw.Members, rc.Members...) {
			t.Fatalf("%s %s q=%d: warm members %v != cold %v", tag, algo.name, q, rw.Members, rc.Members)
		}
		if math.Abs(rw.Radius()-rc.Radius()) > 1e-12 {
			t.Fatalf("%s %s q=%d: warm radius %v != cold %v", tag, algo.name, q, rw.Radius(), rc.Radius())
		}
	}
}

// TestTopoChurnDifferential is the tentpole's acceptance test: randomized
// insert/remove sequences applied through a warmed, cached Searcher must
// leave incremental core numbers and every algorithm's answers identical to
// a from-scratch rebuild.
func TestTopoChurnDifferential(t *testing.T) {
	g := clusteredGraph(11, 5, 7, 25)
	n := g.NumVertices()
	warm := NewSearcher(g)
	rnd := rand.New(rand.NewSource(13))
	queries := []graph.V{0, 7, 14, 21, 28}

	// Warm the cache, views and induced CSRs across several communities.
	for _, q := range queries {
		for k := 2; k <= 3; k++ {
			if _, err := warm.AppFast(q, k, 0.5); err != nil && !errors.Is(err, ErrNoCommunity) {
				t.Fatal(err)
			}
		}
	}

	for round := 0; round < 12; round++ {
		// A small burst of churn between differential checks.
		for i := 0; i < 5; i++ {
			u, v := graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n))
			if u == v {
				continue
			}
			var err error
			if g.HasEdge(u, v) && rnd.Float64() < 0.5 {
				_, err = warm.ApplyEdgeRemove(u, v)
			} else {
				_, err = warm.ApplyEdgeInsert(u, v)
			}
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		rebuilt := rebuildFrom(g)
		wantCores := kcore.Decompose(rebuilt)
		for v := 0; v < n; v++ {
			if warm.CoreNumber(graph.V(v)) != int(wantCores[v]) {
				t.Fatalf("round %d: core[%d] = %d, want %d", round, v, warm.CoreNumber(graph.V(v)), wantCores[v])
			}
		}
		cold := NewSearcher(rebuilt)
		for _, q := range queries {
			for k := 2; k <= 3; k++ {
				requireSameAnswers(t, warm, cold, q, k, "churn")
			}
		}
	}
}

// TestTopoEpochInvalidatesCache pins the invalidation path itself: a cached
// community must not survive an edge removal that shrinks it.
func TestTopoEpochInvalidatesCache(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	r1, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(r1.Members, vQ, vC, vD) {
		t.Fatalf("paper optimum before churn = %v, want {Q,C,D}", r1.Members)
	}
	if s.CachedCommunities() == 0 {
		t.Fatal("first query did not populate the cache")
	}
	// Breaking {C, D} destroys the {Q,C,D} triangle; the optimum becomes
	// {Q, A, B}. A stale cached candidate set would still offer C and D.
	if ok, err := s.ApplyEdgeRemove(vC, vD); err != nil || !ok {
		t.Fatalf("ApplyEdgeRemove: ok=%v err=%v", ok, err)
	}
	r2, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(r2.Members, vQ, vA, vB) {
		t.Fatalf("optimum after RemoveEdge(C,D) = %v, want {Q,A,B}", r2.Members)
	}
	validateCommunity(t, g, r2, vQ, 2)
	// Re-adding the edge restores the original optimum.
	if ok, err := s.ApplyEdgeInsert(vC, vD); err != nil || !ok {
		t.Fatalf("ApplyEdgeInsert: ok=%v err=%v", ok, err)
	}
	r3, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(r3.Members, vQ, vC, vD) {
		t.Fatalf("optimum after re-insert = %v, want {Q,C,D}", r3.Members)
	}
}

// TestPoolWorkerNotStaleAfterRemoveEdge mirrors the SetLoc-replay test for
// topology: a pooled worker with a warmed cache must not serve a stale
// community after an edge removal applied through the base searcher.
func TestPoolWorkerNotStaleAfterRemoveEdge(t *testing.T) {
	g := clusteredGraph(7, 5, 8, 30)
	base := NewSearcher(g)
	pool := NewPool(base)
	q := graph.V(0)
	k := 3
	if base.CoreNumber(q) < k {
		t.Skip("fixture lacks a 3-core at q")
	}

	// Warm one worker's cache and keep it checked out so we provably re-use
	// the warmed searcher (sync.Pool recycling is not guaranteed).
	w := pool.Get()
	r1, err := w.AppFast(q, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w.CachedCommunities() == 0 {
		t.Fatal("worker cache not warmed")
	}

	// Remove a handful of q's community edges through the base searcher —
	// the worker is idle, matching the server's write-lock discipline.
	removed := 0
	for _, v := range r1.Members {
		if v == q {
			continue
		}
		for _, u := range append([]graph.V(nil), g.Neighbors(v)...) {
			if u == q || removed >= 3 {
				continue
			}
			if ok, err := base.ApplyEdgeRemove(v, u); err == nil && ok {
				removed++
			}
		}
	}
	if removed == 0 {
		t.Fatal("no edges removed")
	}

	cold := NewSearcher(rebuildFrom(g))
	requireSameAnswers(t, w, cold, q, k, "pooled")
	pool.Put(w)

	// Fresh workers cloned after the update agree too.
	requireSameAnswers(t, pool.Get(), cold, q, k, "fresh-clone")
}

// TestApplyEdgeValidation covers the error paths: out-of-range endpoints and
// the unsupported k-truss metric.
func TestApplyEdgeValidation(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	if _, err := s.ApplyEdgeInsert(0, 99); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if _, err := s.ApplyEdgeRemove(-1, 2); err == nil {
		t.Fatal("out-of-range remove accepted")
	}
	if ok, err := s.ApplyEdgeInsert(vQ, vQ); err != nil || ok {
		t.Fatalf("self-loop: ok=%v err=%v, want no-op", ok, err)
	}
	ts := NewSearcherWithStructure(figure3(), StructureKTruss)
	if _, err := ts.ApplyEdgeInsert(vQ, vE); err == nil {
		t.Fatal("k-truss searcher accepted a topology update")
	}
}

// TestApplyEdgeKClique exercises dynamic topology under the k-clique metric,
// whose communities are recomputed from the live graph (no decomposition to
// go stale) but whose cache entries must still be invalidated.
func TestApplyEdgeKClique(t *testing.T) {
	g := figure3()
	s := NewSearcherWithStructure(g, StructureKClique)
	if _, err := s.AppInc(vQ, 3); err != nil {
		t.Fatal(err)
	}
	// Drop {Q, C}: triangle {Q,C,D} dies; {Q,A,B} remains Q's only 3-clique.
	if ok, err := s.ApplyEdgeRemove(vQ, vC); err != nil || !ok {
		t.Fatalf("ApplyEdgeRemove: ok=%v err=%v", ok, err)
	}
	res, err := s.AppInc(vQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	uncached := NewSearcherWithStructure(rebuildFrom(g), StructureKClique)
	want, err := uncached.AppInc(vQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(res.Members, want.Members...) {
		t.Fatalf("cached k-clique members %v != rebuilt %v", res.Members, want.Members)
	}
}
