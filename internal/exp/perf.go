package exp

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/gen"
	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// Perf tracking. `sacbench -benchjson <path>` emits a machine-readable
// snapshot of the query hot path — repeated-query throughput with the
// candidate cache on/off, hot-path allocations, batch scaling across worker
// counts, and edge-churn throughput (incremental core maintenance vs
// re-decomposing) — so the performance trajectory is recorded PR over PR
// (BENCH_1.json, then BENCH_2.json with the churn metric). Measurements use
// testing.Benchmark so ns/op and allocs/op match what `go test -bench`
// reports.

// PerfPoint is one measured configuration.
type PerfPoint struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// BatchScalePoint is one worker-count measurement of a fixed batch.
type BatchScalePoint struct {
	Workers    int     `json:"workers"`
	NsPerQuery float64 `json:"nsPerQuery"`
	// Speedup is sequential ns/query divided by this point's ns/query;
	// near-linear scaling approaches Workers (bounded by GOMAXPROCS).
	Speedup float64 `json:"speedup"`
}

// PerfReport is the full snapshot sacbench writes as JSON.
type PerfReport struct {
	Schema     string `json:"schema"` // "sacsearch-bench/2"
	Dataset    string `json:"dataset"`
	Scale      float64 `json:"scale"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`

	// Repeated same-community query stream (AppFast 0.5), cache on vs off.
	RepeatedCached   PerfPoint `json:"repeatedCached"`
	RepeatedUncached PerfPoint `json:"repeatedUncached"`
	// CacheSpeedup = uncached ns/op ÷ cached ns/op.
	CacheSpeedup float64 `json:"cacheSpeedup"`

	// Batch execution of the workload across worker counts.
	BatchScaling []BatchScalePoint `json:"batchScaling"`

	// Edge churn: one friendship insert-or-delete applied with incremental
	// core maintenance versus a full re-decomposition per update.
	EdgeChurn EdgeChurnPerf `json:"edgeChurn"`

	ElapsedMillis int64 `json:"elapsedMillis"`
}

// EdgeChurnPerf is the dynamic-topology throughput measurement.
type EdgeChurnPerf struct {
	// IncrementalNsPerOp is one ApplyEdgeInsert/ApplyEdgeRemove, delta-CSR
	// write and traversal-style core repair included.
	IncrementalNsPerOp float64 `json:"incrementalNsPerOp"`
	// RedecomposeNsPerOp is the same graph mutation followed by a from-
	// scratch O(m) core decomposition — the cost without the maintainer.
	RedecomposeNsPerOp float64 `json:"redecomposeNsPerOp"`
	// Speedup = redecompose ÷ incremental.
	Speedup float64 `json:"speedup"`
	// UpdatesPerSecond is the sustained incremental churn rate.
	UpdatesPerSecond float64 `json:"updatesPerSecond"`
}

// Perf measures the report on cfg's first dataset.
func Perf(cfg Config) (*PerfReport, error) {
	start := time.Now()
	name := "brightkite"
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	ds, err := dataset.Load(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	queries := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, errNoQueries(name)
	}
	rep := &PerfReport{
		Schema:     "sacsearch-bench/2",
		Dataset:    name,
		Scale:      cfg.Scale,
		Queries:    len(queries),
		K:          cfg.K,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Repeated-query stream, cached vs uncached.
	measure := func(cached bool) PerfPoint {
		s := core.NewSearcher(ds.Graph)
		s.SetCandidateCaching(cached)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.AppFast(queries[i%len(queries)], cfg.K, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		return PerfPoint{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	rep.RepeatedCached = measure(true)
	rep.RepeatedUncached = measure(false)
	if rep.RepeatedCached.NsPerOp > 0 {
		rep.CacheSpeedup = rep.RepeatedUncached.NsPerOp / rep.RepeatedCached.NsPerOp
	}

	// Batch scaling: a widened workload (batch.RunOn deduplicates identical
	// (q, k) pairs, so the batch needs distinct query vertices to measure
	// real work) run at growing worker counts over a persistent pool.
	wide := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries*10, cfg.Seed+1)
	if len(wide) == 0 {
		wide = queries
	}
	work := make([]batch.Query, 0, len(wide))
	for _, q := range wide {
		work = append(work, batch.Query{Q: q, K: cfg.K})
	}
	base := core.NewSearcher(ds.Graph)
	maxWorkers := runtime.GOMAXPROCS(0)
	var workerCounts []int
	for w := 1; w < maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	workerCounts = append(workerCounts, maxWorkers)
	var seqNs float64
	for _, w := range workerCounts {
		pool := core.NewPool(base)
		opt := batch.Options{Workers: w, Algorithm: batch.AlgoAppFast, EpsF: 0.5}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch.RunOn(pool, work, opt)
			}
		})
		nsPerQuery := float64(r.NsPerOp()) / float64(len(work))
		if w == 1 {
			seqNs = nsPerQuery
		}
		sp := 0.0
		if nsPerQuery > 0 {
			sp = seqNs / nsPerQuery
		}
		rep.BatchScaling = append(rep.BatchScaling, BatchScalePoint{
			Workers:    w,
			NsPerQuery: nsPerQuery,
			Speedup:    sp,
		})
	}

	// Edge churn on a clone (the batch graph above must stay untouched).
	// The same event sequence drives both measurements; inserts and deletes
	// alternate through it, so the edge set stays near its original size.
	churn := gen.EdgeChurn(ds.Graph, gen.EdgeChurnConfig{Days: 1, Events: 512, InsertFrac: 0.5}, cfg.Seed+2)
	if len(churn) > 0 {
		applyOn := func(g *graph.Graph, s *core.Searcher, i int) {
			e := churn[i%len(churn)]
			if g.HasEdge(e.U, e.V) {
				_, _ = s.ApplyEdgeRemove(e.U, e.V)
			} else {
				_, _ = s.ApplyEdgeInsert(e.U, e.V)
			}
		}
		gInc := ds.Graph.Clone()
		sInc := core.NewSearcher(gInc)
		rInc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				applyOn(gInc, sInc, i)
			}
		})
		gRe := ds.Graph.Clone()
		rRe := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := churn[i%len(churn)]
				if gRe.HasEdge(e.U, e.V) {
					gRe.RemoveEdge(e.U, e.V)
				} else {
					gRe.AddEdge(e.U, e.V)
				}
				kcore.Decompose(gRe)
			}
		})
		rep.EdgeChurn = EdgeChurnPerf{
			IncrementalNsPerOp: float64(rInc.NsPerOp()),
			RedecomposeNsPerOp: float64(rRe.NsPerOp()),
		}
		if rep.EdgeChurn.IncrementalNsPerOp > 0 {
			rep.EdgeChurn.Speedup = rep.EdgeChurn.RedecomposeNsPerOp / rep.EdgeChurn.IncrementalNsPerOp
			rep.EdgeChurn.UpdatesPerSecond = 1e9 / rep.EdgeChurn.IncrementalNsPerOp
		}
	}

	rep.ElapsedMillis = time.Since(start).Milliseconds()
	return rep, nil
}

// WritePerfJSON runs Perf and writes the indented JSON report to w.
func WritePerfJSON(cfg Config, w io.Writer) error {
	rep, err := Perf(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

type errNoQueries string

func (e errNoQueries) Error() string {
	return "exp: no workload queries with the configured core bound in " + string(e)
}
