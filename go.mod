module sacsearch

go 1.22
