package subscribe

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/telemetry"
)

// twoClusterGraph builds two k-cliques far apart: vertices [0,size) around
// the origin, [size,2*size) around (100,100). A subscription anchored in the
// first cluster has a candidate closure entirely inside it.
func twoClusterGraph(size int) *graph.Graph {
	b := graph.NewBuilder(2 * size)
	for c := 0; c < 2; c++ {
		base := 100.0 * float64(c)
		for i := 0; i < size; i++ {
			v := graph.V(c*size + i)
			b.SetLoc(v, geom.Point{X: base + float64(i)*0.01, Y: base})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*size+j))
			}
		}
	}
	return b.Build()
}

// TestGateSkipsFarAwayMoves is the gate-effectiveness pin: a burst of
// check-ins touching only the far cluster must be answered entirely by the
// invalidation gate — skipped_by_gate grows, the evaluation count does not
// move, and the subscriber's stream stays silent.
func TestGateSkipsFarAwayMoves(t *testing.T) {
	const size = 6
	g := twoClusterGraph(size)
	eng := snapshot.New(g, snapshot.Options{})
	defer eng.Close()

	reg := telemetry.NewRegistry()
	mgr := NewManager(ManagerOptions{
		Current: eng.Current,
		Hub:     Options{Metrics: reg, StreamBuf: 1024},
	})
	defer mgr.Close()
	eng.SetOnPublish(mgr.Notify)

	sub, err := mgr.Register("near", core.Query{Q: 0, K: 3, Algo: "appfast"})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := sub.Attach(0, false)
	if err != nil {
		t.Fatal(err)
	}

	// Let the initial evaluation land before measuring.
	ctx := context.Background()
	if err := eng.CheckIn(ctx, graph.V(size), geom.Point{X: 100, Y: 100.5}); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, mgr, eng.Current().Seq())
	if got := len(drainStream(st)); got != 1 {
		t.Fatalf("expected exactly the init event before the burst, got %d", got)
	}

	evals0 := mgr.Hub().Evals().Value()
	skipped0 := mgr.Hub().Skipped().Value()

	// Far-cluster churn: every move is outside the subscription's closure.
	for i := 0; i < 40; i++ {
		v := graph.V(size + i%size)
		p := geom.Point{X: 100 + float64(i)*0.003, Y: 100 - float64(i)*0.002}
		if err := eng.CheckIn(ctx, v, p); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, mgr, eng.Current().Seq())

	if got := mgr.Hub().Evals().Value(); got != evals0 {
		t.Errorf("far-away moves triggered %d re-evaluations (evals %d -> %d)",
			got-evals0, evals0, got)
	}
	if got := mgr.Hub().Skipped().Value(); got <= skipped0 {
		t.Errorf("skipped_by_gate did not grow: %d -> %d", skipped0, got)
	}
	if got := len(drainStream(st)); got != 0 {
		t.Errorf("far-away moves produced %d events on the stream", got)
	}

	// The registry exposes the counter under the pinned metric name — the
	// same name the server test scrapes off /metrics.
	text := scrape(reg)
	for _, name := range []string{
		"sac_subscription_skipped_by_gate_total",
		"sac_subscription_evaluations_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from registry exposition", name)
		}
	}

	// Control: a move of a closure member does re-evaluate. The MCC over a
	// clique is location-sensitive, so the stream sees a delta too.
	if err := eng.CheckIn(ctx, graph.V(1), geom.Point{X: 5, Y: 5}); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, mgr, eng.Current().Seq())
	if got := mgr.Hub().Evals().Value(); got == evals0 {
		t.Error("member move did not re-evaluate")
	}
}

// TestGateNoCommunityIgnoresMoves: a subscription whose anchor is outside
// the k-core re-evaluates on topology only; moves anywhere are skipped.
func TestGateNoCommunityIgnoresMoves(t *testing.T) {
	const size = 6
	g := twoClusterGraph(size)
	eng := snapshot.New(g, snapshot.Options{})
	defer eng.Close()
	mgr := NewManager(ManagerOptions{Current: eng.Current, Hub: Options{StreamBuf: 1024}})
	defer mgr.Close()
	eng.SetOnPublish(mgr.Notify)

	sub, err := mgr.Register("nocomm", core.Query{Q: 0, K: size + 3, Algo: "appfast"})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := sub.Attach(0, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := eng.CheckIn(ctx, graph.V(0), geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	waitProcessed(t, mgr, eng.Current().Seq())
	evs := drainStream(st)
	if len(evs) != 1 || evs[0].Kind != KindInit {
		t.Fatalf("expected one init, got %v", evs)
	}
	var rs replayState
	rs.apply(t, evs[0])
	if !rs.noCommunity {
		t.Fatal("k beyond max degree should have no community")
	}

	evals0 := mgr.Hub().Evals().Value()
	for i := 0; i < 20; i++ {
		v := graph.V(i % (2 * size))
		if err := eng.CheckIn(ctx, v, geom.Point{X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, mgr, eng.Current().Seq())
	if got := mgr.Hub().Evals().Value(); got != evals0 {
		t.Errorf("moves re-evaluated a no-community subscription %d times", got-evals0)
	}
}

// scrape renders the registry the same way /metrics does.
func scrape(reg *telemetry.Registry) string {
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}
