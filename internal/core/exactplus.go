package core

import (
	"context"
	"fmt"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

const sqrt3 = 1.7320508075688772

// ExactPlus is the advanced exact algorithm of Section 4.5 (Algorithm 5).
// It first runs AppAcc with a small εA, which (a) bounds the optimal radius
// to ropt ∈ [rΓ/(1+εA), rΓ] (Eq. 6) and (b) leaves a set of surviving
// anchors, one of which is within √2·β/2 of the true MCC center o. Every
// fixed vertex of the optimal MCC therefore lies in a narrow annulus
// [r⁻, r⁺] around some surviving anchor (Eqs. 7–8). ExactPlus collects those
// potential fixed vertices F1 and enumerates only pairs and triples drawn
// from F1 — typically orders of magnitude fewer than Exact's — with the
// Lemma 2 distance filters √3·r⁻ ≤ |v1,v2| ≤ 2·rcur.
func (s *Searcher) ExactPlus(q graph.V, k int, epsA float64) (*Result, error) {
	return s.ExactPlusCtx(context.Background(), q, k, epsA)
}

// ExactPlusCtx is ExactPlus with cancellation: the AppAcc phase checks per
// anchor and per binary-search iteration, the enumeration phase once per F1
// pair, returning ErrCanceled when the context fires.
func (s *Searcher) ExactPlusCtx(ctx context.Context, q graph.V, k int, epsA float64) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsA <= 0 || epsA >= 1 {
		return nil, fmt.Errorf("core: εA = %v must be in (0,1)", epsA)
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	st, err := s.appAcc(q, k, epsA)
	if err != nil {
		return nil, err
	}
	if s.ctxErr != nil {
		return s.ctxResult(nil, nil)
	}
	if st.degenerate {
		// γ = 0: Φ has radius 0, which is optimal.
		return s.finish(s.buildResult(q, k, st.members, st.delta), start), nil
	}

	// Annulus bounds around surviving anchors (Eqs. 7 and 8).
	cover := sqrt2 * st.finalHalf // √2·β/2 for final cells of width β = 2·half
	rPlus := st.rcur + cover
	rMinus := st.rcur/(1+epsA) - cover
	if rMinus < 0 {
		rMinus = 0
	}

	// F1: vertices of S inside the annulus of at least one surviving anchor,
	// gathered by annulus range queries against the grid appAcc built over S
	// (the old path scanned all of S once per surviving anchor). The marker
	// deduplicates vertices that fall in several anchors' annuli.
	f1 := s.f1Buf[:0]
	if s.noAnnulus {
		f1 = append(f1, st.S...)
	} else {
		s.inX.Reset()
		for _, cell := range st.finalCells {
			s.subBuf = s.sGrid.InAnnulus(cell.C, rMinus, rPlus, s.subBuf[:0])
			for _, v := range s.subBuf {
				if !s.inX.Has(v) {
					s.inX.Mark(v)
					f1 = append(f1, v)
				}
			}
		}
	}
	s.f1Buf = f1
	s.stats.F1Size = len(f1)

	rcur := st.rcur
	best := append(s.bestBuf[:0], st.members...)
	qLoc := s.g.Loc(q)

	tryCircle := func(cc geom.Circle) {
		s.stats.CirclesExamined++
		if cc.R >= rcur || !cc.Contains(qLoc) {
			return
		}
		// Last boundary before the member gather + peel (see Exact).
		if s.canceled() {
			return
		}
		R := s.circleMembers(cc)
		if c := s.feasible(R, q, k); c != nil {
			mcc := s.g.MCCOf(c)
			if mcc.R < rcur {
				rcur = mcc.R
				best = append(best[:0], c...)
			}
		}
	}

	// Enumerate F1 pairs and triples with the distance filters of
	// Algorithm 5, lines 6-10. rcur tightens as better solutions appear,
	// narrowing the filters further.
	if ws := s.parWorkersFor(len(f1)); ws != nil {
		if r, c, ok := s.exactPlusScanPar(ctx, ws, f1, rMinus, qLoc, q, k, rcur); ok {
			rcur = r
			best = append(best[:0], c...)
		}
	} else {
	enum:
		for i1, v1 := range f1 {
			p1 := s.g.Loc(v1)
			for i2, v2 := range f1 {
				if i2 <= i1 {
					continue
				}
				if s.canceled() {
					break enum
				}
				p2 := s.g.Loc(v2)
				d12 := p1.Dist(p2)
				// v2 plays the farthest-fixed-vertex role: Lemma 2 puts the
				// largest fixed-vertex distance in [√3·ropt, 2·ropt] ⊆
				// [√3·rMinus, 2·rcur].
				if d12 < sqrt3*rMinus-geom.Eps || d12 > 2*rcur+geom.Eps {
					continue
				}
				// Two fixed vertices: diameter circle.
				tryCircle(geom.CircleFrom2(p1, p2))
				// Third fixed vertex: no farther from v1 than v2 is (F3 filter).
				for i3, v3 := range f1 {
					if i3 == i1 || i3 == i2 {
						continue
					}
					if s.canceledTick() {
						break enum
					}
					p3 := s.g.Loc(v3)
					if p1.Dist(p3) > d12+geom.Eps || p2.Dist(p3) > d12+geom.Eps {
						continue
					}
					tryCircle(geom.CircleFrom3(p1, p2, p3))
				}
			}
		}
	}
	s.bestBuf = best
	if s.ctxErr != nil {
		return s.ctxResult(nil, nil)
	}
	res := s.buildResult(q, k, best, rcur)
	return s.finish(res, start), nil
}

// exactPlusDefaultEps is the εA the paper uses for Exact+ in the efficiency
// experiments (Figure 12, εA = 10⁻⁴ — our unit-square datasets are smaller,
// so 10⁻³ yields the same |F1| regime at lower anchor cost).
const exactPlusDefaultEps = 1e-3

// ExactPlusDefault runs ExactPlus with the default εA.
func (s *Searcher) ExactPlusDefault(q graph.V, k int) (*Result, error) {
	return s.ExactPlus(q, k, exactPlusDefaultEps)
}
