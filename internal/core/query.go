package core

import (
	"context"
	"fmt"
	"time"

	"sacsearch/internal/graph"
)

// Query is the unified SAC request: one value expresses everything the six
// per-algorithm entry points accept, so every layer — facade, batch, HTTP,
// CLI, bench — speaks a single request shape. Zero values mean "default":
// an empty Algo runs DefaultAlgo, nil parameter pointers take the
// registry's per-algorithm defaults, an empty Structure accepts whatever
// metric the searcher was built with, and a zero Timeout applies no
// per-query deadline beyond the caller's context.
//
// The parameter fields are pointers so that presence is expressible:
// AppFast with an explicit εF = 0 (which degenerates to the AppInc answer)
// is a different request from AppFast with εF unset (which defaults to
// 0.5). Build pointers with Float.
type Query struct {
	// Algo names the algorithm (registry name or alias, case-insensitive);
	// empty runs DefaultAlgo.
	Algo string
	// Q is the query vertex.
	Q graph.V
	// K is the degree threshold (≥ 1).
	K int
	// EpsF is AppFast's εF (nil = default 0.5).
	EpsF *float64
	// EpsA is AppAcc's / Exact+'s εA (nil = default 0.5 / 1e-3).
	EpsA *float64
	// Theta is θ-SAC's catchment radius (required when Algo is "theta").
	Theta *float64
	// Structure optionally names the structure-cohesiveness metric the
	// query expects ("kcore", "ktruss", "kclique"); a searcher prepared
	// with a different metric rejects the query rather than silently
	// answering under the wrong one.
	Structure string
	// Timeout, when positive, bounds this query's execution on top of the
	// caller's context.
	Timeout time.Duration
}

// Float returns a pointer to v — the convenient way to set a Query's
// optional parameter fields inline: Query{Algo: "appfast", EpsF: Float(0)}.
func Float(v float64) *float64 { return &v }

// SetParam sets the parameter field named by its wire/CLI name — the
// programmatic counterpart of the typed EpsF/EpsA/Theta fields, for callers
// (like registry-generated CLI flags) that bind parameters by name. The
// name list here is the same one resolveParams binds, and an unknown name
// is an error, so a parameter added to the registry cannot be silently
// dropped by a by-name caller: TestRegistryShape asserts SetParam accepts
// every registered ParamSpec.
func (q *Query) SetParam(name string, v float64) error {
	switch name {
	case "epsF":
		q.EpsF = &v
	case "epsA":
		q.EpsA = &v
	case "theta":
		q.Theta = &v
	default:
		return fmt.Errorf("core: query has no parameter field %q", name)
	}
	return nil
}

// Machine-readable QueryError codes. The HTTP layer forwards them verbatim
// in its error envelope.
const (
	// ErrCodeUnknownAlgorithm: Query.Algo names no registered algorithm.
	ErrCodeUnknownAlgorithm = "unknown_algorithm"
	// ErrCodeInvalidParam: a parameter is non-finite, out of range, or not
	// accepted by the chosen algorithm.
	ErrCodeInvalidParam = "invalid_param"
	// ErrCodeMissingParam: a required parameter (θ-SAC's theta) is absent.
	ErrCodeMissingParam = "missing_param"
	// ErrCodeInvalidQuery: q or k is out of range.
	ErrCodeInvalidQuery = "invalid_query"
	// ErrCodeStructureMismatch: the query names a structure metric the
	// searcher was not built with.
	ErrCodeStructureMismatch = "structure_mismatch"
)

// QueryError reports why a Query failed validation, with a machine-readable
// Code (one of the ErrCode constants) and the offending Field.
type QueryError struct {
	Code   string
	Field  string
	Reason string
}

func (e *QueryError) Error() string { return "core: invalid query: " + e.Reason }

// ParseStructure resolves a structure-metric name. It accepts the compact
// spellings the CLI and wire use ("kcore") and the hyphenated display forms
// ("k-core").
func ParseStructure(name string) (Structure, error) {
	switch name {
	case "kcore", "k-core":
		return StructureKCore, nil
	case "ktruss", "k-truss":
		return StructureKTruss, nil
	case "kclique", "k-clique":
		return StructureKClique, nil
	default:
		return 0, fmt.Errorf("core: unknown structure metric %q (want kcore, ktruss or kclique)", name)
	}
}

// Structure returns the structure-cohesiveness metric the searcher was
// prepared with.
func (s *Searcher) Structure() Structure { return s.structure }

// resolve validates and defaults a Query against this searcher, returning
// the algorithm spec and the concrete parameter values to run with.
func (s *Searcher) resolve(q Query) (*AlgoSpec, resolvedParams, error) {
	var p resolvedParams
	spec, ok := LookupAlgo(q.Algo)
	if !ok {
		return nil, p, &QueryError{Code: ErrCodeUnknownAlgorithm, Field: "algo",
			Reason: fmt.Sprintf("unknown algorithm %q", q.Algo)}
	}
	if q.Structure != "" {
		st, err := ParseStructure(q.Structure)
		if err != nil {
			return nil, p, &QueryError{Code: ErrCodeStructureMismatch, Field: "structure",
				Reason: fmt.Sprintf("unknown structure metric %q", q.Structure)}
		}
		if st != s.structure {
			return nil, p, &QueryError{Code: ErrCodeStructureMismatch, Field: "structure",
				Reason: fmt.Sprintf("searcher serves the %v metric, query wants %v", s.structure, st)}
		}
	}
	if q.Q < 0 || int(q.Q) >= s.g.NumVertices() {
		return nil, p, &QueryError{Code: ErrCodeInvalidQuery, Field: "q",
			Reason: fmt.Sprintf("query vertex %d out of range [0,%d)", q.Q, s.g.NumVertices())}
	}
	if q.K < 1 {
		return nil, p, &QueryError{Code: ErrCodeInvalidQuery, Field: "k",
			Reason: fmt.Sprintf("k = %d must be ≥ 1", q.K)}
	}
	if q.Timeout < 0 {
		return nil, p, &QueryError{Code: ErrCodeInvalidQuery, Field: "timeout",
			Reason: fmt.Sprintf("timeout %v must be non-negative", q.Timeout)}
	}
	p, err := resolveParams(spec, q)
	if err != nil {
		return nil, p, err
	}
	return spec, p, nil
}

// resolveParams binds each provided parameter to the spec's schema,
// applying defaults and range checks, and rejects parameters the algorithm
// does not take so a typo'd request fails loudly instead of running with a
// silently ignored knob.
func resolveParams(spec *AlgoSpec, q Query) (resolvedParams, error) {
	var p resolvedParams
	bindings := [...]struct {
		name string
		ptr  *float64
		dst  *float64
	}{
		{"epsF", q.EpsF, &p.epsF},
		{"epsA", q.EpsA, &p.epsA},
		{"theta", q.Theta, &p.theta},
	}
	for _, b := range bindings {
		ps, accepts := spec.Param(b.name)
		if !accepts {
			if b.ptr != nil {
				return p, &QueryError{Code: ErrCodeInvalidParam, Field: b.name,
					Reason: fmt.Sprintf("%s is not a parameter of %s", b.name, spec.Name)}
			}
			continue
		}
		if b.ptr == nil {
			if ps.Required {
				return p, &QueryError{Code: ErrCodeMissingParam, Field: b.name,
					Reason: fmt.Sprintf("%s requires parameter %s", spec.Name, b.name)}
			}
			*b.dst = ps.Default
			continue
		}
		if err := ps.validate(*b.ptr); err != nil {
			return p, err
		}
		*b.dst = *b.ptr
	}
	return p, nil
}

// ValidateParams checks a query's algorithm name and parameters against the
// registry without a searcher — the graph-independent half of validation
// (vertex range, k and structure are the searcher's half). It returns the
// resolved spec so callers learn the canonical algorithm name. The batch
// and HTTP layers use it to fail a whole request before touching workers.
func ValidateParams(q Query) (*AlgoSpec, error) {
	spec, ok := LookupAlgo(q.Algo)
	if !ok {
		return nil, &QueryError{Code: ErrCodeUnknownAlgorithm, Field: "algo",
			Reason: fmt.Sprintf("unknown algorithm %q", q.Algo)}
	}
	if _, err := resolveParams(spec, q); err != nil {
		return nil, err
	}
	return spec, nil
}

// ValidateQuery reports whether q is a well-formed request for this
// searcher — same checks as Search, without running anything.
func (s *Searcher) ValidateQuery(q Query) error {
	_, _, err := s.resolve(q)
	return err
}

// Search is the unified entry point: it validates and defaults q through
// the algorithm registry, then dispatches to the chosen algorithm's *Ctx
// implementation — so for any valid query, Search returns exactly what the
// corresponding legacy method (Exact, AppFast, ...) returns. Invalid
// queries fail with a *QueryError before any work happens. A positive
// q.Timeout bounds the query with its own deadline on top of ctx;
// cancellation surfaces as ErrCanceled.
func (s *Searcher) Search(ctx context.Context, q Query) (*Result, error) {
	spec, p, err := s.resolve(q)
	if err != nil {
		return nil, err
	}
	if q.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.Timeout)
		defer cancel()
	}
	return spec.run(ctx, s, q, p)
}
