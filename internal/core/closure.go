package core

import (
	"sacsearch/internal/graph"
)

// CandidateClosure returns the candidate set X of (q, k) — the connected
// k-structure containing q — together with its frontier: the vertices
// outside X adjacent to a member. members is nil when q has no community at
// this k. Both slices are freshly allocated.
//
// The standing-query layer uses the closure as an invalidation gate: every
// registered algorithm except θ-SAC is a pure function of induced(X) and the
// locations of X, and (for the k-core metric) X can only change when an
// applied event touches X itself or moves a frontier vertex into the k-core,
// so a publication disjoint from the closure cannot change the answer.
func (s *Searcher) CandidateClosure(q graph.V, k int) (members, frontier []graph.V) {
	if q < 0 || int(q) >= s.g.NumVertices() || k < 1 {
		return nil, nil
	}
	members = s.communityOf(q, k)
	if members == nil {
		return nil, nil
	}
	in := graph.NewMarker(s.g.NumVertices())
	in.MarkAll(members)
	seen := graph.NewMarker(s.g.NumVertices())
	for _, v := range members {
		for _, u := range s.g.Neighbors(v) {
			if !in.Has(u) && !seen.Has(u) {
				seen.Mark(u)
				frontier = append(frontier, u)
			}
		}
	}
	return members, frontier
}
