// Package telemetry is the zero-dependency observability kit for the
// serving stack: a metrics registry (counters, gauges, fixed-bucket
// histograms, with labeled variants) rendered in the Prometheus text
// exposition format, and lightweight trace spans carried on
// context.Context (span.go).
//
// Design constraints, in order:
//
//   - Hot-path observations must be a few atomic operations — queries run
//     in microseconds, so a mutex per Observe would show up in profiles.
//   - A nil *Registry must be safe everywhere: every constructor on a nil
//     registry returns a nil instrument, and every method on a nil
//     instrument is a no-op. Packages take an optional registry and
//     instrument unconditionally; the overhead benchmark compares the two.
//   - Registration is get-or-create: asking for the same family twice
//     returns the same instrument, so components that restart (a replica
//     engine re-sync, a test booting two servers in one process) do not
//     collide. GaugeFunc callbacks are last-wins for the same reason.
//
// Metric names follow Prometheus conventions: a sac_ prefix, snake_case,
// base units (seconds, bytes), _total suffix on counters.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds, spanning
// cached sub-millisecond queries up to multi-second assembled scatter-gather.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them as Prometheus text. The
// zero value is not useful; use NewRegistry. A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family: a fixed type and help string plus one
// child instrument per label-value combination.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu       sync.RWMutex
	children map[string]renderable // key: label values joined with \xff
	order    []string              // insertion order of child keys, for stable output
}

type renderable interface {
	// render writes the family's sample lines (not HELP/TYPE) for this
	// child, with labelStr already formatted ("" or `{k="v",...}`).
	render(w io.Writer, name, labelStr string)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the family, creating it if absent. An existing family
// is reused as-is: callers registering the same name twice get the same
// instruments back (re-registration with a conflicting type would be a
// programming error; the first registration wins, matching get-or-create).
func (r *Registry) getFamily(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		children: make(map[string]renderable)}
	r.families[name] = f
	return f
}

// child returns the instrument for the given label values, creating it via
// mk if absent.
func (f *family) child(vals []string, mk func() renderable) renderable {
	key := strings.Join(vals, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// replaceChild installs the instrument for the given label values,
// overwriting any existing one (GaugeFunc is last-wins so a restarted
// component's closure reads the live object, not a dead one).
func (f *family) replaceChild(vals []string, c renderable) {
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[key]; !ok {
		f.order = append(f.order, key)
	}
	f.children[key] = c
}

// --- counters ---------------------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) render(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.v.Load())
}

// Counter returns the unlabeled counter family's single instrument.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "counter", nil)
	return f.child(nil, func() renderable { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels; call With to get a child.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per declared
// label, in order).
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(vals, func() renderable { return &Counter{} }).(*Counter)
}

// CounterVec returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, "counter", labels)}
}

// counterFunc renders a callback as a counter sample.
type counterFunc struct{ fn func() uint64 }

func (c counterFunc) render(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.fn())
}

// CounterFunc registers a callback-backed counter: the callback is invoked
// at scrape time, for sources that already maintain their own monotonic
// count (WAL last seq, engine applied events). Last registration wins.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, "counter", nil)
	f.replaceChild(nil, counterFunc{fn})
}

// --- gauges -----------------------------------------------------------------

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; use for +1/-1 inflight tracking).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) render(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(g.Value()))
}

// Gauge returns the unlabeled gauge family's single instrument.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "gauge", nil)
	return f.child(nil, func() renderable { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(vals, func() renderable { return &Gauge{} }).(*Gauge)
}

// GaugeVec returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getFamily(name, help, "gauge", labels)}
}

// gaugeFunc renders a callback as a gauge sample.
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) render(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(g.fn()))
}

// GaugeFunc registers a callback-backed gauge, invoked at scrape time.
// Last registration wins, so a component that restarts (replica promotion
// swapping engines) re-registers and the scrape reads the live object.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, "gauge", nil)
	f.replaceChild(nil, gaugeFunc{fn})
}

// --- histograms -------------------------------------------------------------

// Histogram counts observations into fixed buckets. Per-bucket counts are
// stored non-cumulatively (each Observe touches exactly one bucket slot)
// and summed cumulatively at render time, so the hot path is one binary
// search plus two atomic adds and one CAS loop for the sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last slot is +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; sort.SearchFloat64s finds the
	// insertion point for v, which is exactly that index when bounds are
	// treated as inclusive upper edges (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) render(w io.Writer, name, labelStr string) {
	// Rebuild the label string with le appended: `{a="b"}` -> `{a="b",le="x"}`.
	prefix, suffix := "{", "}"
	if labelStr != "" {
		prefix = labelStr[:len(labelStr)-1] + ","
		suffix = "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"%s %d\n", name, prefix, formatFloat(b), suffix, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, prefix, suffix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelStr, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelStr, h.count.Load())
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Histogram returns the unlabeled histogram family's single instrument.
// A nil or empty buckets slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "histogram", nil)
	return f.child(nil, func() renderable { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(vals, func() renderable { return newHistogram(v.buckets) }).(*Histogram)
}

// HistogramVec returns a labeled histogram family. A nil or empty buckets
// slice uses DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getFamily(name, help, "histogram", labels), buckets: buckets}
}

// --- rendering --------------------------------------------------------------

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString formats `{k1="v1",k2="v2"}` ("" when no labels).
func labelString(names, vals []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4), families sorted by name, children in registration order.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		children := make([]renderable, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, c := range children {
			var vals []string
			if keys[i] != "" {
				vals = strings.Split(keys[i], "\xff")
			}
			c.render(w, f.name, labelString(f.labels, vals))
		}
	}
}

// Handler returns an http.Handler serving WriteText with the standard
// text-format content type, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
