// Command sacquery runs one SAC query — against a local graph (generated
// dataset or on-disk files) or, with -server, against a running sacserver
// through the typed /v1 client — and prints the community, its MCC and the
// work counters.
//
// Usage:
//
//	sacquery -dataset brightkite -scale 0.02 -q 17 -k 4 -algo exact+
//	sacquery -dataset syn1 -scale 0.05 -q 3 -k 4 -algo appfast -epsF 0.5
//	sacquery -edges g.edges -locs g.locs -n 1000 -q 5 -k 3 -algo appacc -epsA 0.3
//	sacquery -server http://localhost:8080 -q 17 -k 4 -algo theta -theta 0.05
//	sacquery -dataset gowalla -q 9 -k 3 -algo mindiam -structure kclique
//
// Algorithms come from the registry (sacquery -algos lists them with their
// parameter schemas); the per-algorithm parameter flags (-epsF, -epsA,
// -theta) are generated from the same registry, so their names match the
// HTTP wire names 1:1. The extra local-only algorithms mindiam2, mindiam,
// global and local run the minimum-diameter variants and the non-spatial
// baselines. Structure metrics (-structure): kcore (default), ktruss,
// kclique.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"sacsearch/client"
	"sacsearch/internal/community"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

func main() {
	var (
		dsName    = flag.String("dataset", "", "dataset preset to generate")
		scale     = flag.Float64("scale", 0.02, "dataset scale in (0,1]")
		edges     = flag.String("edges", "", "edge-list file (alternative to -dataset)")
		locs      = flag.String("locs", "", "locations file")
		n         = flag.Int("n", 0, "vertex count for -edges/-locs input")
		serverURL = flag.String("server", "", "query a running sacserver at this base URL instead of a local graph")
		q         = flag.Int("q", 0, "query vertex id")
		k         = flag.Int("k", 4, "minimum degree")
		algo      = flag.String("algo", "exact+", "algorithm: registry name (see -algos) or mindiam2 | mindiam | global | local")
		listAlgos = flag.Bool("algos", false, "list the algorithm registry and exit")
		metric    = flag.String("structure", "kcore", "structure cohesiveness: kcore | ktruss | kclique")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	)
	// The per-algorithm parameter flags are generated from the registry, so
	// every flag name matches its wire name and carries the registry's doc
	// and default; only flags the user explicitly set are sent, letting the
	// registry apply per-algorithm defaults (exact+ and appacc disagree on
	// epsA's default, so a baked-in flag default would be wrong for one).
	params := make(map[string]*float64)
	for _, spec := range core.Algorithms() {
		for _, p := range spec.Params {
			if _, dup := params[p.Name]; !dup {
				params[p.Name] = flag.Float64(p.Name, p.Default, p.Doc)
			}
		}
	}
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *listAlgos {
		for _, spec := range core.Algorithms() {
			fmt.Printf("%-8s ratio %-7s %s\n", spec.Name, spec.Ratio, spec.Doc)
			for _, p := range spec.Params {
				req := fmt.Sprintf("default %v", p.Default)
				if p.Required {
					req = "required"
				}
				fmt.Printf("         -%s (%s): %s\n", p.Name, req, p.Doc)
			}
		}
		return
	}

	query := core.Query{
		Algo:      *algo,
		Q:         graph.V(*q),
		K:         *k,
		Structure: *metric,
		Timeout:   *timeout,
	}
	for name, val := range params {
		if !set[name] {
			continue
		}
		// SetParam binds by the same name table the registry resolves, and
		// errors on names it does not know — so a parameter added to the
		// registry without a Query field fails loudly here instead of
		// silently dropping the user's flag.
		if err := query.SetParam(name, *val); err != nil {
			fail(err)
		}
	}

	if *serverURL != "" {
		if err := runRemote(*serverURL, query); err != nil {
			fail(err)
		}
		return
	}

	g, err := loadGraph(*dsName, *scale, *edges, *locs, *n)
	if err != nil {
		fail(err)
	}
	if err := runLocal(g, query); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sacquery: %v\n", err)
	os.Exit(1)
}

// runRemote sends the query through the typed /v1 client.
func runRemote(baseURL string, q core.Query) error {
	cl, err := client.New(baseURL)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if q.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.Timeout)
		defer cancel()
	}
	res, err := cl.Query(ctx, client.Query{
		Q:         int64(q.Q),
		K:         q.K,
		Algo:      q.Algo,
		EpsF:      q.EpsF,
		EpsA:      q.EpsA,
		Theta:     q.Theta,
		Structure: q.Structure,
		// The deadline rides the wire too, so the server bounds the query
		// itself (within its own per-request cap) — not just this call.
		TimeoutMillis: q.Timeout.Milliseconds(),
	})
	var apiErr *client.APIError
	if errors.Is(err, client.ErrNoCommunity) {
		fmt.Println("no community")
		os.Exit(1)
	}
	if errors.As(err, &apiErr) {
		return fmt.Errorf("%s", apiErr.Error())
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s SAC for q=%d k=%d: %d members (server %s)\n",
		res.Stats.Algorithm, res.Q, res.K, len(res.Members), baseURL)
	fmt.Printf("MCC center (%.4f, %.4f), radius %.6f, δ %.6f\n",
		res.MCC.X, res.MCC.Y, res.MCC.R, res.Delta)
	fmt.Printf("stats: %d candidates, %d feasibility checks, %d binary iters, %dµs\n",
		res.Stats.CandidateSize, res.Stats.FeasibilityChecks, res.Stats.BinaryIters, res.Stats.ElapsedMicros)
	if len(res.Members) <= 25 {
		fmt.Printf("members: %v\n", res.Members)
	}
	return nil
}

// runLocal answers the query on an in-process graph: registry algorithms
// through the unified Search entry point, the local-only extras (baselines,
// minimum-diameter variants) through their legacy methods.
func runLocal(g *graph.Graph, q core.Query) error {
	switch q.Algo {
	case "global", "local":
		return runBaseline(g, q)
	}

	structure, err := core.ParseStructure(q.Structure)
	if err != nil {
		return err
	}
	s := core.NewSearcherWithStructure(g, structure)

	var res *core.Result
	switch q.Algo {
	case "mindiam2":
		res, err = s.MinDiam2Approx(q.Q, q.K)
	case "mindiam":
		res, err = s.MinDiamLens(q.Q, q.K)
	default:
		res, err = s.Search(context.Background(), q)
	}
	if errors.Is(err, core.ErrNoCommunity) {
		fmt.Println("no community")
		os.Exit(1)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s SAC for q=%d k=%d: %d members\n", q.Algo, q.Q, q.K, res.Size())
	fmt.Printf("MCC center (%.4f, %.4f), radius %.6f, δ %.6f\n",
		res.MCC.C.X, res.MCC.C.Y, res.Radius(), res.Delta)
	fmt.Printf("stats: %d candidates, %d feasibility checks, %d circles, %v\n",
		res.Stats.CandidateSize, res.Stats.FeasibilityChecks, res.Stats.CirclesExamined, res.Stats.Elapsed)
	if q.Algo == "mindiam2" || q.Algo == "mindiam" {
		fmt.Printf("diameter (max pairwise distance): %.6f\n", core.DiameterOf(g, res.Members))
	}
	if res.Size() <= 25 {
		fmt.Printf("members: %v\n", res.Members)
	}
	return nil
}

func runBaseline(g *graph.Graph, q core.Query) error {
	b := community.NewSearcher(g)
	var members []graph.V
	if q.Algo == "global" {
		members = b.Global(q.Q, q.K)
	} else {
		members = b.Local(q.Q, q.K)
	}
	if members == nil {
		fmt.Println("no community")
		os.Exit(1)
	}
	mcc := g.MCCOf(members)
	fmt.Printf("%s community: %d members, MCC center (%.4f, %.4f) radius %.6f\n",
		q.Algo, len(members), mcc.C.X, mcc.C.Y, mcc.R)
	fmt.Printf("avg internal degree %.2f, distPr %.6f\n",
		community.AvgInternalDegree(g, members), metrics.DistPr(g, members, 1))
	return nil
}

func loadGraph(dsName string, scale float64, edges, locs string, n int) (*graph.Graph, error) {
	switch {
	case dsName != "":
		ds, err := dataset.Load(dsName, scale)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	case edges != "" && locs != "":
		if n <= 0 {
			return nil, fmt.Errorf("-n (vertex count) is required with -edges/-locs")
		}
		ef, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		lf, err := os.Open(locs)
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		return graph.Read(ef, lf, n)
	default:
		return nil, fmt.Errorf("provide -dataset, -edges/-locs, or -server")
	}
}
