// Package dataset provides the named datasets of Table 4 as deterministic
// synthetic stand-ins, plus text serialization. The paper's real downloads
// (SNAP Brightkite/Gowalla, Flickr, the UMN Foursquare snapshot) are not
// redistributable here, so each preset regenerates a graph with the
// published vertex count, edge count and average degree using the paper's
// own synthetic recipe (Section 5.1; see package gen). The generator seed is
// fixed per preset, so every run of every experiment sees the same bytes.
//
// Full-size presets match Table 4 exactly; most experiments run on scaled
// copies (Load with scale < 1) that keep the average degree, because the
// exact algorithms the paper benchmarks are deliberately super-linear.
package dataset

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sacsearch/internal/gen"
	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// Preset describes one named dataset of Table 4.
type Preset struct {
	Name     string
	Vertices int
	Edges    int
	AvgDeg   float64 // d̂ as published
	Seed     int64
	// Synthetic marks the datasets that were synthetic in the paper too
	// (Syn1, Syn2); the others stand in for real downloads.
	Synthetic bool
}

// Presets mirrors Table 4.
var Presets = []Preset{
	{Name: "brightkite", Vertices: 51406, Edges: 197167, AvgDeg: 7.67, Seed: 0xb41},
	{Name: "gowalla", Vertices: 107092, Edges: 456830, AvgDeg: 8.53, Seed: 0x90a},
	{Name: "flickr", Vertices: 214698, Edges: 2096306, AvgDeg: 19.5, Seed: 0xf11c},
	{Name: "foursquare", Vertices: 2127093, Edges: 8640352, AvgDeg: 8.12, Seed: 0x45ec},
	{Name: "syn1", Vertices: 30000, Edges: 300000, AvgDeg: 20, Seed: 0x511, Synthetic: true},
	{Name: "syn2", Vertices: 400000, Edges: 4000000, AvgDeg: 20, Seed: 0x512, Synthetic: true},
}

// PresetByName finds a preset, case-insensitively.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("dataset: unknown preset %q (have %s)", name, Names())
}

// Names lists the preset names.
func Names() string {
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// Dataset is a named spatial graph ready for experiments.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	// Scale records the fraction of the published size this instance was
	// generated at (1 = full Table 4 size).
	Scale float64
}

// Load builds the named dataset at the given scale ∈ (0, 1]. Scaling keeps
// the published average degree: n' = n·scale, m' = m·scale.
func Load(name string, scale float64) (*Dataset, error) {
	p, err := PresetByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v out of (0,1]", scale)
	}
	n := int(float64(p.Vertices) * scale)
	m := int(float64(p.Edges) * scale)
	if n < 16 {
		n = 16
	}
	if m < n {
		m = n
	}
	b := gen.SocialGraph(n, m, p.Seed)
	gen.PlaceSpatial(b, gen.DefaultDistMean, gen.DefaultDistSigma, p.Seed+1)
	return &Dataset{Name: p.Name, Graph: b.Build(), Scale: scale}, nil
}

// SubgraphPercent returns the subgraph induced by a uniform pct% sample of
// the vertices (the scalability protocol of Section 5.1: "randomly extract
// subgraphs of 20%, 40%, ... of vertices"). Vertices are renumbered densely;
// locations carry over.
func SubgraphPercent(d *Dataset, pct int, seed int64) (*Dataset, error) {
	if pct <= 0 || pct > 100 {
		return nil, fmt.Errorf("dataset: pct %d out of (0,100]", pct)
	}
	g := d.Graph
	n := g.NumVertices()
	if pct == 100 {
		return &Dataset{Name: fmt.Sprintf("%s-%d%%", d.Name, pct), Graph: g.Clone(), Scale: d.Scale}, nil
	}
	rnd := rand.New(rand.NewSource(seed))
	keepN := n * pct / 100
	perm := rnd.Perm(n)[:keepN]
	sort.Ints(perm)
	newID := make([]graph.V, n)
	for i := range newID {
		newID[i] = -1
	}
	for i, old := range perm {
		newID[old] = graph.V(i)
	}
	b := graph.NewBuilder(keepN)
	for _, old := range perm {
		v := graph.V(old)
		b.SetLoc(newID[old], g.Loc(v))
		for _, u := range g.Neighbors(v) {
			if v < u && newID[u] >= 0 {
				b.AddEdge(newID[old], newID[u])
			}
		}
	}
	return &Dataset{Name: fmt.Sprintf("%s-%d%%", d.Name, pct), Graph: b.Build(), Scale: d.Scale * float64(pct) / 100}, nil
}

// QueryWorkload returns count query vertices drawn uniformly from the
// vertices with core number ≥ minCore, the paper's workload construction
// (Section 5.1: 200 random vertices with core number 4 or more). The
// selection is deterministic in seed. It returns fewer when the graph lacks
// eligible vertices.
func QueryWorkload(g *graph.Graph, minCore, count int, seed int64) []graph.V {
	cores := kcore.Decompose(g)
	var eligible []graph.V
	for v := 0; v < g.NumVertices(); v++ {
		if int(cores[v]) >= minCore {
			eligible = append(eligible, graph.V(v))
		}
	}
	rnd := rand.New(rand.NewSource(seed))
	rnd.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if len(eligible) > count {
		eligible = eligible[:count]
	}
	sorted := append([]graph.V(nil), eligible...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// Save writes the dataset's edges and locations under dir as
// <name>.edges and <name>.locs.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ef, err := os.Create(filepath.Join(dir, d.Name+".edges"))
	if err != nil {
		return err
	}
	defer ef.Close()
	if err := graph.WriteEdges(ef, d.Graph); err != nil {
		return err
	}
	lf, err := os.Create(filepath.Join(dir, d.Name+".locs"))
	if err != nil {
		return err
	}
	defer lf.Close()
	return graph.WriteLocations(lf, d.Graph)
}

// Open loads a dataset previously written by Save.
func Open(dir, name string, n int) (*Dataset, error) {
	ef, err := os.Open(filepath.Join(dir, name+".edges"))
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	lf, err := os.Open(filepath.Join(dir, name+".locs"))
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	g, err := graph.Read(ef, lf, n)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Graph: g, Scale: 1}, nil
}

// SaveBinary writes the dataset under dir as <name>.sacg in the checksummed
// binary CSR format — roughly 30× faster to reload than the text pair and
// self-describing (no separate vertex count needed).
func (d *Dataset) SaveBinary(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, d.Name+".sacg"))
	if err != nil {
		return err
	}
	if err := graph.WriteBinary(f, d.Graph); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenBinary loads a dataset previously written by SaveBinary.
func OpenBinary(dir, name string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, name+".sacg"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Graph: g, Scale: 1}, nil
}
