// HTTP serving instruments shared by the server and the router: both
// daemons expose the same sac_http_* families so one dashboard reads the
// whole topology.
package telemetry

import "strings"

// HTTPMetrics bundles the per-request instruments the serving middleware
// observes. The zero value (all nil instruments, from a nil registry) is a
// valid no-op.
type HTTPMetrics struct {
	// Requests counts finished requests by route, method and status code.
	Requests *CounterVec
	// Duration is request wall time by route.
	Duration *HistogramVec
	// Inflight is the number of requests being served right now.
	Inflight *Gauge
}

// NewHTTPMetrics registers (get-or-create) the sac_http_* families on reg.
// A nil reg yields the no-op zero value.
func NewHTTPMetrics(reg *Registry) HTTPMetrics {
	return HTTPMetrics{
		Requests: reg.CounterVec("sac_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		Duration: reg.HistogramVec("sac_http_request_duration_seconds",
			"HTTP request wall time by route.", nil, "route"),
		Inflight: reg.Gauge("sac_http_inflight", "HTTP requests currently being served."),
	}
}

// RouteLabel maps a request path onto a bounded label set: known routes
// keep their path (vertex ids collapse to {id}), everything else becomes
// "other" so an URL-scanning crawler cannot mint unbounded label values.
func RouteLabel(path string) string {
	if path == "/metrics" {
		return "/metrics"
	}
	for _, p := range []string{"/v1", "/api"} {
		rest, ok := strings.CutPrefix(path, p+"/")
		if !ok {
			continue
		}
		seg, tail, _ := strings.Cut(rest, "/")
		switch seg {
		case "health", "ready", "algorithms", "query", "batch", "checkin", "edge":
			return p + "/" + seg
		case "vertex":
			return p + "/vertex/{id}"
		case "shard":
			verb, _, _ := strings.Cut(tail, "/")
			switch verb {
			case "info", "search", "expand", "range":
				return p + "/shard/" + verb
			}
		}
	}
	return "other"
}
