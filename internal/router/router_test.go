package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sacsearch/client"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
	"sacsearch/internal/shard"
	"sacsearch/internal/telemetry"
)

// testGraph builds a spatially clustered social graph. The small sigma
// keeps graph communities spatially coherent — so certified single-shard
// answers exist — while the power-law backbone still drags plenty of
// communities across shard boundaries.
func testGraph(n, m int, seed int64) *graph.Graph {
	b := gen.SocialGraph(n, m, seed)
	gen.PlaceSpatial(b, 0.03, 0.08, seed+1)
	return b.Build()
}

// topology is one sharded deployment next to its single-engine reference —
// both driven over HTTP so wire shapes and envelopes are compared end to
// end.
type topology struct {
	g      *graph.Graph
	m      *shard.Map
	single *httptest.Server   // the reference: one server over the whole graph
	shards []*httptest.Server // per-shard servers
	router *httptest.Server
	rt     *Router

	singleCl *client.Client
	routerCl *client.Client
}

// routerHandler exposes the underlying Router for tests that reach into
// its subscription state.
func (tp *topology) routerHandler(t *testing.T) *Router {
	t.Helper()
	return tp.rt
}

func newTopology(t *testing.T, g *graph.Graph, shards int) *topology {
	t.Helper()
	tp := &topology{g: g}
	var err error
	tp.m, err = shard.Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}

	ref := server.New("single", g.Clone())
	t.Cleanup(ref.Close)
	tp.single = httptest.NewServer(ref)
	t.Cleanup(tp.single.Close)

	urls := make([][]string, shards)
	for id := 0; id < shards; id++ {
		sub, err := shard.Subgraph(g, tp.m, id)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := shard.NewServing(tp.m, id)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithConfig(fmt.Sprintf("shard-%d", id), sub, server.Config{Shard: sv})
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		tp.shards = append(tp.shards, ts)
		urls[id] = []string{ts.URL}
	}

	// A real registry so tests can read the router's counters (nil would
	// no-op every instrument).
	rt, err := New(Config{Map: tp.m, Shards: urls, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	tp.rt = rt
	t.Cleanup(rt.DrainSubscriptions)
	tp.router = httptest.NewServer(rt)
	t.Cleanup(tp.router.Close)

	if tp.singleCl, err = client.New(tp.single.URL); err != nil {
		t.Fatal(err)
	}
	if tp.routerCl, err = client.New(tp.router.URL); err != nil {
		t.Fatal(err)
	}
	return tp
}

// deltaClose compares deltas up to ULP-scale noise. Members and the result
// MCC are pinned byte-equal (buildResult sorts members before computing the
// MCC, so both engines feed it identical input); delta alone gets this
// slack because Exact+ reports the MCC radius of the last circle that
// improved its enumeration, and that intermediate radius is computed on
// members in peel order. Peel order follows CSR adjacency order, which
// legitimately differs between the full graph and the assembled subgraph
// (rebuilt from scratch at the router) — and geom.MCC's randomized
// incremental construction is order-sensitive in the last bit. The bound is
// ~16k ULP at these magnitudes: far above that noise, far below any real
// answer divergence.
func deltaClose(a, b float64) bool {
	return a == b || math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// diffQueries runs the same query against the reference and the router and
// pins members and MCC to byte equality, delta to deltaClose. Returns how
// many queries had cross-shard answers (members on >= 2 shards).
func (tp *topology) diffQueries(t *testing.T, label string, queries []client.Query) (crossShard int) {
	t.Helper()
	for _, q := range queries {
		want, wantErr := tp.singleCl.Query(t.Context(), q)
		got, gotErr := tp.routerCl.Query(t.Context(), q)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: q=%d k=%d algo=%q: single err=%v, routed err=%v", label, q.Q, q.K, q.Algo, wantErr, gotErr)
		}
		if wantErr != nil {
			if errors.Is(wantErr, client.ErrNoCommunity) != errors.Is(gotErr, client.ErrNoCommunity) {
				t.Fatalf("%s: q=%d k=%d algo=%q: error kinds differ: %v vs %v", label, q.Q, q.K, q.Algo, wantErr, gotErr)
			}
			continue
		}
		if len(want.Members) != len(got.Members) {
			t.Fatalf("%s: q=%d k=%d algo=%q: %d members routed, %d single",
				label, q.Q, q.K, q.Algo, len(got.Members), len(want.Members))
		}
		for i := range want.Members {
			if want.Members[i] != got.Members[i] {
				t.Fatalf("%s: q=%d k=%d algo=%q: member[%d] = %d routed, %d single",
					label, q.Q, q.K, q.Algo, i, got.Members[i], want.Members[i])
			}
		}
		if want.MCC != got.MCC {
			t.Fatalf("%s: q=%d k=%d algo=%q: MCC %+v routed, %+v single", label, q.Q, q.K, q.Algo, got.MCC, want.MCC)
		}
		if !deltaClose(want.Delta, got.Delta) {
			t.Fatalf("%s: q=%d k=%d algo=%q: delta %v routed, %v single", label, q.Q, q.K, q.Algo, got.Delta, want.Delta)
		}
		owners := map[int]bool{}
		for _, m := range want.Members {
			owners[tp.m.OwnerOf(graph.V(m))] = true
		}
		if len(owners) > 1 {
			crossShard++
		}
	}
	return crossShard
}

// sampleQueries spreads (q, k) pairs over the graph for the approximation
// algorithms (cheap enough to sample at every k, including the k=1
// whole-component degenerate) plus θ-SAC at two radii. The exact
// algorithms are covered by TestRoutedExactAlgorithms on a graph sized for
// their cost.
func sampleQueries(n int, stride int) []client.Query {
	var qs []client.Query
	cheap := []string{"", "appfast", "appinc", "appacc"}
	for v := 0; v < n; v += stride {
		for _, k := range []int{1, 2, 3, 4} {
			algo := cheap[(v/stride+k)%len(cheap)]
			qs = append(qs, client.Query{Q: int64(v), K: k, Algo: algo})
		}
		for _, theta := range []float64{0.05, 0.3} {
			qs = append(qs, client.Query{Q: int64(v), K: 2 + v%3, Algo: "theta", Theta: client.Float(theta)})
		}
	}
	return qs
}

// TestRoutedEqualsSingleEngine is the differential suite: routed answers
// must equal the single-engine reference for every registered algorithm —
// including cross-shard candidate sets — before and after a churn of
// check-ins and (cross-shard) edge mutations applied through both fronts.
func TestRoutedEqualsSingleEngine(t *testing.T) {
	g := testGraph(360, 1700, 91)
	tp := newTopology(t, g, 3)
	n := g.NumVertices()

	queries := sampleQueries(n, 26)
	cross := tp.diffQueries(t, "pre-churn", queries)
	if cross == 0 {
		t.Fatal("differential sample never exercised a cross-shard answer; graph or partition too easy")
	}
	t.Logf("pre-churn: %d/%d queries had cross-shard answers", cross, len(queries))

	// Churn: spatial drift (including cross-cell jumps that break any
	// geometry-based assumption), edge inserts biased toward cross-shard
	// pairs, and deletes of existing edges. Both fronts see the identical
	// sequence; both are read-your-writes, so the states are quiesced when
	// the writes return.
	rnd := rand.New(rand.NewSource(17))
	for i := 0; i < 120; i++ {
		v := int64(rnd.Intn(n))
		x, y := rnd.Float64(), rnd.Float64()
		if err := tp.singleCl.CheckIn(t.Context(), v, x, y); err != nil {
			t.Fatalf("single checkin: %v", err)
		}
		if err := tp.routerCl.CheckIn(t.Context(), v, x, y); err != nil {
			t.Fatalf("routed checkin: %v", err)
		}
	}
	var lastSingle, lastRouted *client.EdgeResult
	for i := 0; i < 150; i++ {
		u := int64(rnd.Intn(n))
		v := int64(rnd.Intn(n))
		if u == v {
			continue
		}
		insert := i%3 != 2
		var err error
		if lastSingle, err = tp.singleCl.Edge(t.Context(), u, v, insert); err != nil {
			t.Fatalf("single edge: %v", err)
		}
		if lastRouted, err = tp.routerCl.Edge(t.Context(), u, v, insert); err != nil {
			t.Fatalf("routed edge: %v", err)
		}
		if lastSingle.Changed != lastRouted.Changed {
			t.Fatalf("edge (%d,%d,insert=%v): changed=%v single, %v routed", u, v, insert, lastSingle.Changed, lastRouted.Changed)
		}
	}
	if lastSingle.Edges != lastRouted.Edges {
		t.Fatalf("edge counts diverged after churn: %d single, %d routed", lastSingle.Edges, lastRouted.Edges)
	}

	cross = tp.diffQueries(t, "post-churn", queries)
	t.Logf("post-churn: %d/%d queries had cross-shard answers", cross, len(queries))
}

// TestRoutedExactAlgorithms runs the two exact algorithms — whose cost
// grows steeply with candidate size — through the same routed-vs-single
// differential on a graph at the scale the core package's own differential
// uses, before and after churn.
func TestRoutedExactAlgorithms(t *testing.T) {
	g := testGraph(90, 420, 7)
	tp := newTopology(t, g, 2)
	n := g.NumVertices()

	var queries []client.Query
	for v := 0; v < n; v += 5 {
		for _, k := range []int{2, 3, 4} {
			queries = append(queries,
				client.Query{Q: int64(v), K: k, Algo: "exact"},
				client.Query{Q: int64(v), K: k, Algo: "exact+"})
		}
	}
	cross := tp.diffQueries(t, "exact pre-churn", queries)
	t.Logf("exact pre-churn: %d/%d cross-shard", cross, len(queries))

	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		v, x, y := int64(rnd.Intn(n)), rnd.Float64(), rnd.Float64()
		if err := tp.singleCl.CheckIn(t.Context(), v, x, y); err != nil {
			t.Fatal(err)
		}
		if err := tp.routerCl.CheckIn(t.Context(), v, x, y); err != nil {
			t.Fatal(err)
		}
		u, w := int64(rnd.Intn(n)), int64(rnd.Intn(n))
		if u == w {
			continue
		}
		if _, err := tp.singleCl.Edge(t.Context(), u, w, i%3 != 2); err != nil {
			t.Fatal(err)
		}
		if _, err := tp.routerCl.Edge(t.Context(), u, w, i%3 != 2); err != nil {
			t.Fatal(err)
		}
	}
	tp.diffQueries(t, "exact post-churn", queries)
}

// TestRoutedBatch pins the batch surface: same members and circles, same
// per-item error strings for infeasible items.
func TestRoutedBatch(t *testing.T) {
	g := testGraph(300, 1300, 55)
	tp := newTopology(t, g, 2)
	var qs []client.BatchQuery
	for v := 0; v < g.NumVertices(); v += 13 {
		qs = append(qs, client.BatchQuery{Q: int64(v), K: 1 + v%5})
	}
	want, err := tp.singleCl.Batch(t.Context(), qs, &client.BatchOptions{Algo: "appfast"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.routerCl.Batch(t.Context(), qs, &client.BatchOptions{Algo: "appfast"})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("item counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Error != got[i].Error {
			t.Fatalf("item %d (q=%d k=%d): error %q single, %q routed", i, want[i].Q, want[i].K, want[i].Error, got[i].Error)
		}
		if len(want[i].Members) != len(got[i].Members) || want[i].MCC != got[i].MCC {
			t.Fatalf("item %d (q=%d k=%d): answers differ: %+v vs %+v", i, want[i].Q, want[i].K, want[i], got[i])
		}
		for j := range want[i].Members {
			if want[i].Members[j] != got[i].Members[j] {
				t.Fatalf("item %d member %d differs", i, j)
			}
		}
	}
}

// postRaw posts a JSON body and decodes the error envelope.
func postRaw(t *testing.T, url string, body string) (int, server.ErrorJSON) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env server.ErrorJSON
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env
}

// TestEnvelopeParity pins that the router speaks the single server's error
// contract: same status and code (and message, for core-level errors) for
// the same bad request.
func TestEnvelopeParity(t *testing.T) {
	g := testGraph(300, 1200, 77)
	tp := newTopology(t, g, 2)
	cases := []string{
		`{"q":0,"k":3,"algo":"nope"}`,
		`{"q":999999,"k":3}`,
		`{"q":-1,"k":3}`,
		`{"q":0,"k":0}`,
		`{"q":0,"k":3,"algo":"theta"}`,
		`{"q":0,"k":3,"algo":"appfast","epsF":-1}`,
		`{"q":0,"k":3,"structure":"ktruss"}`,
		`{"q":0,"k":3,"algo":"exact","theta":0.5}`,
		`not json`,
	}
	for _, body := range cases {
		wantStatus, wantEnv := postRaw(t, tp.single.URL+"/v1/query", body)
		gotStatus, gotEnv := postRaw(t, tp.router.URL+"/v1/query", body)
		if wantStatus != gotStatus || wantEnv.Code != gotEnv.Code {
			t.Fatalf("body %s: single %d/%s, routed %d/%s", body, wantStatus, wantEnv.Code, gotStatus, gotEnv.Code)
		}
		if wantEnv.Error != gotEnv.Error && wantEnv.Code != server.CodeInvalidJSON {
			t.Fatalf("body %s: message %q single, %q routed", body, wantEnv.Error, gotEnv.Error)
		}
	}
}

// TestVertexProxyAndHealth covers the metadata surface: vertex lookups
// proxy to the owner, health aggregates every shard, ready gates on map
// agreement.
func TestVertexProxyAndHealth(t *testing.T) {
	g := testGraph(300, 1200, 3)
	tp := newTopology(t, g, 2)
	for _, id := range []int64{0, 17, int64(g.NumVertices() - 1)} {
		want, err := tp.singleCl.Vertex(t.Context(), id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tp.routerCl.Vertex(t.Context(), id)
		if err != nil {
			t.Fatal(err)
		}
		// The core number is shard-local (a documented lower bound), so only
		// the authoritative fields are pinned.
		if want.ID != got.ID || want.X != got.X || want.Y != got.Y || want.Degree != got.Degree {
			t.Fatalf("vertex %d: %+v single, %+v routed", id, want, got)
		}
	}
	h, err := tp.routerCl.Health(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthy topology reports %q", h.Status)
	}
	if string(h.Extra["shards"]) != "2" {
		t.Fatalf("health shards = %s, want 2", h.Extra["shards"])
	}
	resp, err := http.Get(tp.router.URL + "/v1/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready = %d on a healthy topology", resp.StatusCode)
	}
}

// TestShardUnavailable kills one shard and checks the partial-failure
// contract: queries owned (and certified) by the surviving shard still
// answer; anything needing the dead shard returns the structured 503
// shard_unavailable envelope; health degrades; ready gates.
func TestShardUnavailable(t *testing.T) {
	// Two 8-cliques in opposite corners: the spatial cut puts one whole
	// clique on each shard, so each shard has a certified community and
	// owns vertices the other shard never needs.
	b := graph.NewBuilder(16)
	for c := 0; c < 2; c++ {
		base, cx := c*8, 0.1+0.8*float64(c)
		for i := 0; i < 8; i++ {
			b.SetLoc(graph.V(base+i), geom.Point{X: cx + float64(i%3)*0.01, Y: cx + float64(i/3)*0.01})
			for j := i + 1; j < 8; j++ {
				b.AddEdge(graph.V(base+i), graph.V(base+j))
			}
		}
	}
	g := b.Build()
	tp := newTopology(t, g, 2)
	if tp.m.OwnerOf(0) == tp.m.OwnerOf(8) {
		t.Fatal("cliques landed on the same shard; test graph needs adjusting")
	}
	// Use short client retries so the dead shard fails fast.
	routerShort, err := New(Config{
		Map:    tp.m,
		Shards: [][]string{{tp.shards[0].URL}, {tp.shards[1].URL}},
		ClientOptions: []client.Option{
			client.WithRetries(0),
			client.WithHTTPClient(&http.Client{Timeout: 2 * time.Second}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(routerShort)
	defer ts.Close()
	cl, err := client.New(ts.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}

	// Clique 0's shard stays up; the other goes dark.
	live := tp.m.OwnerOf(0)
	tp.shards[1-live].Close()
	ok0, dead1 := int64(0), int64(8) // vertex 0 on the live shard, 8 on the dead one

	if res, err := cl.Query(t.Context(), client.Query{Q: ok0, K: 2}); err != nil {
		t.Fatalf("certified query on the live shard failed: %v", err)
	} else {
		// SAC minimizes the community, so any sub-clique is a valid answer —
		// what matters is that it answered from the live shard alone.
		if len(res.Members) < 3 {
			t.Fatalf("clique query returned %d members, want >= 3", len(res.Members))
		}
		for _, m := range res.Members {
			if tp.m.OwnerOf(graph.V(m)) != live {
				t.Fatalf("member %d is owned by the dead shard", m)
			}
		}
	}
	_, err = cl.Query(t.Context(), client.Query{Q: dead1, K: 2})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != server.CodeShardUnavailable {
		t.Fatalf("query for the dead shard: got %v, want 503 %s", err, server.CodeShardUnavailable)
	}
	if err := cl.CheckIn(t.Context(), dead1, 0.5, 0.5); err == nil {
		t.Fatal("checkin for the dead shard succeeded")
	}

	h, err := cl.Health(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("health with a dead shard = %q, want degraded", h.Status)
	}
	resp, err := http.Get(ts.URL + "/v1/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready with a dead shard = %d, want 503", resp.StatusCode)
	}
}

// TestWrongShardGuards posts writes for foreign vertices directly at a
// shard, which must refuse with wrong_shard rather than fork ghost state.
func TestWrongShardGuards(t *testing.T) {
	g := testGraph(300, 1200, 29)
	tp := newTopology(t, g, 2)
	var foreign int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if tp.m.OwnerOf(graph.V(v)) == 1 {
			foreign = int64(v)
			break
		}
	}
	status, env := postRaw(t, tp.shards[0].URL+"/v1/checkin",
		fmt.Sprintf(`{"v":%d,"x":0.1,"y":0.2}`, foreign))
	if status != http.StatusBadRequest || env.Code != server.CodeWrongShard {
		t.Fatalf("foreign checkin: %d/%s, want 400 %s", status, env.Code, server.CodeWrongShard)
	}
	status, env = postRaw(t, tp.shards[0].URL+"/v1/shard/search",
		fmt.Sprintf(`{"q":%d,"k":2}`, foreign))
	if status != http.StatusBadRequest || env.Code != server.CodeWrongShard {
		t.Fatalf("foreign shard search: %d/%s, want 400 %s", status, env.Code, server.CodeWrongShard)
	}
}
