package graph

// Marker is a versioned membership set over the vertex ids [0, n). Reset is
// O(1): it bumps the epoch instead of clearing the array. Every SAC search
// algorithm performs thousands of feasibility checks per query, each over a
// different candidate set, and the O(1) reset keeps those checks
// allocation-free.
type Marker struct {
	stamp []uint32
	epoch uint32
}

// NewMarker creates a marker for n vertices; all vertices start unmarked.
func NewMarker(n int) *Marker {
	return &Marker{stamp: make([]uint32, n), epoch: 1}
}

// Reset unmarks every vertex in O(1).
func (m *Marker) Reset() {
	m.epoch++
	if m.epoch == 0 { // epoch wrapped: clear for real, once every 2^32 resets
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.epoch = 1
	}
}

// Mark adds v to the set.
func (m *Marker) Mark(v V) { m.stamp[v] = m.epoch }

// Unmark removes v from the set.
func (m *Marker) Unmark(v V) { m.stamp[v] = 0 }

// Has reports whether v is in the set.
func (m *Marker) Has(v V) bool { return m.stamp[v] == m.epoch }

// Len returns the capacity (number of vertex slots), not the current
// cardinality.
func (m *Marker) Len() int { return len(m.stamp) }

// MarkAll marks every vertex in vs.
func (m *Marker) MarkAll(vs []V) {
	for _, v := range vs {
		m.stamp[v] = m.epoch
	}
}

// BFSFrom runs a breadth-first search from src over the subgraph induced by
// the vertices for which include returns true (src itself must be included).
// It appends visited vertices to dst in visit order and returns it. The
// provided marker is reset and used for the visited set.
func BFSFrom(g *Graph, src V, include func(V) bool, visited *Marker, dst []V) []V {
	if !include(src) {
		return dst
	}
	visited.Reset()
	visited.Mark(src)
	dst = append(dst, src)
	for head := len(dst) - 1; head < len(dst); head++ {
		v := dst[head]
		for _, u := range g.Neighbors(v) {
			if !visited.Has(u) && include(u) {
				visited.Mark(u)
				dst = append(dst, u)
			}
		}
	}
	return dst
}

// ConnectedComponents returns a component id per vertex and the number of
// components, considering the whole graph.
func ConnectedComponents(g *Graph) (comp []int32, count int) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]V, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		queue = queue[:0]
		queue = append(queue, V(s))
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return comp, count
}

// ComponentOf returns the vertices of the connected component containing src.
func ComponentOf(g *Graph, src V) []V {
	visited := NewMarker(g.NumVertices())
	return BFSFrom(g, src, func(V) bool { return true }, visited, nil)
}
