// Command sacquery runs one SAC query against a generated or on-disk
// dataset and prints the community, its MCC and the work counters.
//
// Usage:
//
//	sacquery -dataset brightkite -scale 0.02 -q 17 -k 4 -algo exact+
//	sacquery -dataset syn1 -scale 0.05 -q 3 -k 4 -algo appfast -eps 0.5
//	sacquery -edges g.edges -locs g.locs -n 1000 -q 5 -k 3 -algo appacc
//	sacquery -dataset gowalla -q 9 -k 3 -algo mindiam -structure kclique
//
// Algorithms: exact, exact+, appinc, appfast, appacc, theta, mindiam2,
// mindiam, global, local. Structure metrics (-structure): kcore (default),
// ktruss, kclique.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"sacsearch/internal/community"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

func main() {
	var (
		dsName = flag.String("dataset", "", "dataset preset to generate")
		scale  = flag.Float64("scale", 0.02, "dataset scale in (0,1]")
		edges  = flag.String("edges", "", "edge-list file (alternative to -dataset)")
		locs   = flag.String("locs", "", "locations file")
		n      = flag.Int("n", 0, "vertex count for -edges/-locs input")
		q      = flag.Int("q", 0, "query vertex id")
		k      = flag.Int("k", 4, "minimum degree")
		algo   = flag.String("algo", "exact+", "exact | exact+ | appinc | appfast | appacc | theta | mindiam2 | mindiam | global | local")
		eps    = flag.Float64("eps", 0.5, "εF (appfast) or εA (appacc/exact+)")
		theta  = flag.Float64("theta", 1e-4, "θ for -algo theta")
		metric = flag.String("structure", "kcore", "structure cohesiveness: kcore | ktruss | kclique")
	)
	flag.Parse()

	g, err := loadGraph(*dsName, *scale, *edges, *locs, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sacquery: %v\n", err)
		os.Exit(1)
	}
	qv := graph.V(*q)

	switch *algo {
	case "global", "local":
		b := community.NewSearcher(g)
		var members []graph.V
		if *algo == "global" {
			members = b.Global(qv, *k)
		} else {
			members = b.Local(qv, *k)
		}
		if members == nil {
			fmt.Println("no community")
			os.Exit(1)
		}
		mcc := g.MCCOf(members)
		fmt.Printf("%s community: %d members, MCC center (%.4f, %.4f) radius %.6f\n",
			*algo, len(members), mcc.C.X, mcc.C.Y, mcc.R)
		fmt.Printf("avg internal degree %.2f, distPr %.6f\n",
			community.AvgInternalDegree(g, members), metrics.DistPr(g, members, 1))
		return
	}

	var structure core.Structure
	switch *metric {
	case "kcore":
		structure = core.StructureKCore
	case "ktruss":
		structure = core.StructureKTruss
	case "kclique":
		structure = core.StructureKClique
	default:
		fmt.Fprintf(os.Stderr, "sacquery: unknown structure metric %q\n", *metric)
		os.Exit(2)
	}
	s := core.NewSearcherWithStructure(g, structure)
	var res *core.Result
	switch *algo {
	case "exact":
		res, err = s.Exact(qv, *k)
	case "exact+":
		res, err = s.ExactPlus(qv, *k, *eps)
	case "appinc":
		res, err = s.AppInc(qv, *k)
	case "appfast":
		res, err = s.AppFast(qv, *k, *eps)
	case "appacc":
		res, err = s.AppAcc(qv, *k, *eps)
	case "theta":
		res, err = s.ThetaSAC(qv, *k, *theta)
	case "mindiam2":
		res, err = s.MinDiam2Approx(qv, *k)
	case "mindiam":
		res, err = s.MinDiamLens(qv, *k)
	default:
		fmt.Fprintf(os.Stderr, "sacquery: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if errors.Is(err, core.ErrNoCommunity) {
		fmt.Println("no community")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sacquery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s SAC for q=%d k=%d: %d members\n", *algo, *q, *k, res.Size())
	fmt.Printf("MCC center (%.4f, %.4f), radius %.6f, δ %.6f\n",
		res.MCC.C.X, res.MCC.C.Y, res.Radius(), res.Delta)
	fmt.Printf("stats: %d candidates, %d feasibility checks, %d circles, %v\n",
		res.Stats.CandidateSize, res.Stats.FeasibilityChecks, res.Stats.CirclesExamined, res.Stats.Elapsed)
	if *algo == "mindiam2" || *algo == "mindiam" {
		fmt.Printf("diameter (max pairwise distance): %.6f\n", core.DiameterOf(g, res.Members))
	}
	if res.Size() <= 25 {
		fmt.Printf("members: %v\n", res.Members)
	}
}

func loadGraph(dsName string, scale float64, edges, locs string, n int) (*graph.Graph, error) {
	switch {
	case dsName != "":
		ds, err := dataset.Load(dsName, scale)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	case edges != "" && locs != "":
		if n <= 0 {
			return nil, fmt.Errorf("-n (vertex count) is required with -edges/-locs")
		}
		ef, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		lf, err := os.Open(locs)
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		return graph.Read(ef, lf, n)
	default:
		return nil, fmt.Errorf("provide -dataset or both -edges and -locs")
	}
}
