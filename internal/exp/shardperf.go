package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"sacsearch/client"
	"sacsearch/internal/dataset"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/router"
	"sacsearch/internal/server"
	"sacsearch/internal/shard"
)

// ShardingPerf is the BENCH_7 scatter-gather measurement: the same query
// workload served directly by one sacserver over the whole graph, and
// through a router fronting a 2-shard topology — split by the route the
// router actually takes. A query the owner shard certifies is served by one
// shard leg (the fast path); a query it cannot certify is answered by
// gathering the candidate closure across shards and solving at the router
// (the slow path). Every number includes the full HTTP round trip, so the
// overheads compare like for like.
type ShardingPerf struct {
	Shards int `json:"shards"`
	// SingleShardQueries is how many workload queries the owner shard
	// certified (one-leg fast path); CrossShardQueries is how many needed
	// cross-shard closure assembly.
	SingleShardQueries int `json:"singleShardQueries"`
	CrossShardQueries  int `json:"crossShardQueries"`
	// DirectSingleShardNsPerOp is the certified bucket against a single
	// server over the whole graph — the no-topology baseline; Routed is the
	// same bucket through the router (router hop + one owner leg).
	DirectSingleShardNsPerOp float64 `json:"directSingleShardNsPerOp"`
	RoutedSingleShardNsPerOp float64 `json:"routedSingleShardNsPerOp"`
	// DirectCrossShardNsPerOp / RoutedCrossShardNsPerOp is the uncertified
	// bucket: direct baseline vs scatter-gather assembly plus a router-local
	// solve.
	DirectCrossShardNsPerOp float64 `json:"directCrossShardNsPerOp"`
	RoutedCrossShardNsPerOp float64 `json:"routedCrossShardNsPerOp"`
	// SingleShardOverhead = routed ÷ direct on the certified bucket — the
	// routing tax on queries that never needed more than one shard (the
	// acceptance bar keeps this under 2).
	SingleShardOverhead float64 `json:"singleShardOverhead"`
	// CrossShardOverhead = routed ÷ direct on the assembled bucket — what
	// scattering costs relative to having the whole graph in one place.
	CrossShardOverhead float64 `json:"crossShardOverhead"`
}

// Constellation shape. Five equal communities stacked along y with disjoint
// bands force the count-balanced partitioner to split exactly the middle
// one: the outer four land whole on one shard (their queries certify), the
// middle one straddles the cut (its queries assemble). Both routing paths
// are therefore guaranteed non-empty, whatever the seed.
const (
	shardClusters   = 5
	shardClusterN   = 600
	shardClusterDeg = 12 // average degree inside one community
)

// constellationGraph builds the sharding measurement graph: disjoint
// social-graph communities, each placed in its own spatial disk. The
// datasets' stand-in graphs are useless here — their k-core is one giant
// component, so no spatial cut can certify anything and the fast path would
// never be exercised. A geo-sharded deployment serves spatially localized
// communities; this graph is that workload in miniature, deterministic per
// seed.
func constellationGraph(seed int64) *graph.Graph {
	b := graph.NewBuilder(shardClusters * shardClusterN)
	rnd := rand.New(rand.NewSource(seed))
	for c := 0; c < shardClusters; c++ {
		sub := gen.SocialGraph(shardClusterN, shardClusterN*shardClusterDeg/2, seed+int64(c)+1).Build()
		base := c * shardClusterN
		cy := 0.1 + 0.2*float64(c)
		for v := 0; v < shardClusterN; v++ {
			ang := 2 * math.Pi * rnd.Float64()
			rr := 0.06 * math.Sqrt(rnd.Float64())
			b.SetLoc(graph.V(base+v), geom.Point{X: 0.5 + rr*math.Cos(ang), Y: cy + rr*math.Sin(ang)})
			for _, w := range sub.Neighbors(graph.V(v)) {
				if graph.V(v) < w {
					b.AddEdge(graph.V(base+v), graph.V(base)+w)
				}
			}
		}
	}
	return b.Build()
}

// measureSharding boots the full 2-shard HTTP topology in-process —
// partitioner, per-shard servers, router — plus a single reference server,
// classifies the workload by the route the router takes (owner-certified vs
// assembled), and measures each bucket over both paths.
func measureSharding(cfg Config) (ShardingPerf, error) {
	const shards = 2
	out := ShardingPerf{Shards: shards}

	g := constellationGraph(cfg.Seed + 7)
	workload := dataset.QueryWorkload(g, cfg.MinCore, 48, cfg.Seed)
	if len(workload) == 0 {
		return out, fmt.Errorf("sharding bench: constellation has no vertices with core >= %d", cfg.MinCore)
	}

	m, err := shard.Partition(g, shards)
	if err != nil {
		return out, err
	}

	single := server.New("bench-single", g.Clone())
	defer single.Close()
	singleTS := httptest.NewServer(single)
	defer singleTS.Close()

	urls := make([][]string, shards)
	shardCls := make([]*client.Client, shards)
	for id := 0; id < shards; id++ {
		sub, err := shard.Subgraph(g, m, id)
		if err != nil {
			return out, err
		}
		sv, err := shard.NewServing(m, id)
		if err != nil {
			return out, err
		}
		srv := server.NewWithConfig(fmt.Sprintf("bench-shard-%d", id), sub, server.Config{Shard: sv})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		urls[id] = []string{ts.URL}
		if shardCls[id], err = client.New(ts.URL); err != nil {
			return out, err
		}
	}
	rt, err := router.New(router.Config{Map: m, Shards: urls})
	if err != nil {
		return out, err
	}
	routerTS := httptest.NewServer(rt)
	defer routerTS.Close()

	directCl, err := client.New(singleTS.URL)
	if err != nil {
		return out, err
	}
	routedCl, err := client.New(routerTS.URL)
	if err != nil {
		return out, err
	}

	// Classify the workload by the owner shard's verdict — the exact check
	// the router makes. Certified no-community queries are dropped (they
	// measure validation, not search), as are uncertified queries with no
	// community.
	ctx := context.Background()
	var singleQ, crossQ []client.Query
	for _, qv := range workload {
		cq := client.Query{Q: int64(qv), K: cfg.K, Algo: "appfast", EpsF: client.Float(0.5)}
		verdict, err := shardCls[m.OwnerOf(qv)].ShardSearch(ctx, cq)
		if err != nil {
			return out, err
		}
		switch {
		case verdict.Contained && verdict.NoCommunity:
		case verdict.Contained:
			singleQ = append(singleQ, cq)
		default:
			if _, err := directCl.Query(ctx, cq); err == nil {
				crossQ = append(crossQ, cq)
			}
		}
	}
	if len(singleQ) == 0 || len(crossQ) == 0 {
		return out, fmt.Errorf("sharding bench: workload split %d certified / %d assembled; need both non-empty",
			len(singleQ), len(crossQ))
	}
	out.SingleShardQueries = len(singleQ)
	out.CrossShardQueries = len(crossQ)

	run := func(cl *client.Client, work []client.Query) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cl.Query(ctx, work[i%len(work)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	out.DirectSingleShardNsPerOp = run(directCl, singleQ)
	out.RoutedSingleShardNsPerOp = run(routedCl, singleQ)
	out.DirectCrossShardNsPerOp = run(directCl, crossQ)
	out.RoutedCrossShardNsPerOp = run(routedCl, crossQ)
	if out.DirectSingleShardNsPerOp > 0 {
		out.SingleShardOverhead = out.RoutedSingleShardNsPerOp / out.DirectSingleShardNsPerOp
	}
	if out.DirectCrossShardNsPerOp > 0 {
		out.CrossShardOverhead = out.RoutedCrossShardNsPerOp / out.DirectCrossShardNsPerOp
	}
	return out, nil
}
