package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// spreadClique is a clique of n vertices at uniform random locations in the
// unit square. With a high k the minimum feasible circle must cover k+1
// scattered points, so pruning bites late and the enumeration stays wide —
// the shape that engages the parallel strips and runs long enough to cancel
// mid-scan (tight clusters prune almost immediately off the seeded MCC).
func spreadClique(seed int64, n int) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
		for j := 0; j < v; j++ {
			b.AddEdge(graph.V(v), graph.V(j))
		}
	}
	return b.Build()
}

// sameMembersList reports member-slice equality (both ascending by contract).
func sameMembersList(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffResults fails the test unless the parallel result is byte-identical to
// the serial one: same members, bitwise-equal MCC and Delta.
func diffResults(t *testing.T, label string, serial, par *Result) {
	t.Helper()
	if !sameMembersList(serial.Members, par.Members) {
		t.Fatalf("%s: members diverge: serial %v, parallel %v", label, serial.Members, par.Members)
	}
	if serial.MCC != par.MCC {
		t.Fatalf("%s: MCC diverges: serial %+v, parallel %+v", label, serial.MCC, par.MCC)
	}
	if serial.Delta != par.Delta {
		t.Fatalf("%s: Delta diverges: serial %v, parallel %v", label, serial.Delta, par.Delta)
	}
}

// TestParallelExactMatchesSerial pins the tentpole determinism guarantee:
// the strip-parallel Exact returns byte-identical results to the serial scan
// at every worker count, and workers=1 is the serial path outright (equal
// work counters included).
func TestParallelExactMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := clusteredGraph(seed, 2, 32, 20)
		serial := NewSearcher(g)
		ps := NewSearcher(g)
		rnd := rand.New(rand.NewSource(seed))
		engaged := false
		for _, k := range []int{4, 8} {
			for qi := 0; qi < 3; qi++ {
				q := graph.V(rnd.Intn(g.NumVertices()))
				sres, serr := serial.Exact(q, k)
				for _, workers := range []int{1, 2, 8} {
					ps.SetParallelism(workers)
					pres, perr := ps.Exact(q, k)
					if (serr == nil) != (perr == nil) {
						t.Fatalf("seed %d q=%d k=%d workers=%d: error diverges: serial %v, parallel %v",
							seed, q, k, workers, serr, perr)
					}
					if serr != nil {
						if !errors.Is(perr, serr) && perr.Error() != serr.Error() {
							t.Fatalf("seed %d q=%d k=%d workers=%d: different errors: %v vs %v",
								seed, q, k, workers, serr, perr)
						}
						continue
					}
					label := "exact"
					diffResults(t, label, sres, pres)
					if pres.Stats.CirclesExamined <= 0 {
						t.Fatalf("seed %d q=%d k=%d workers=%d: no circles examined", seed, q, k, workers)
					}
					if workers == 1 {
						// One worker is the serial code path by definition:
						// the full work counters must match, not just results.
						if pres.Stats.CirclesExamined != sres.Stats.CirclesExamined ||
							pres.Stats.FeasibilityChecks != sres.Stats.FeasibilityChecks {
							t.Fatalf("seed %d q=%d k=%d workers=1: counters diverge from serial: %+v vs %+v",
								seed, q, k, pres.Stats, sres.Stats)
						}
					}
				}
				if serr == nil {
					validateCommunity(t, g, sres, q, k)
				}
			}
		}
		if len(ps.parWorkers) > 0 {
			engaged = true
		}
		if !engaged {
			t.Fatalf("seed %d: parallel path never engaged (candidate sets too narrow for parMinWidth=%d)",
				seed, parMinWidth)
		}
	}
}

// TestParallelExactPlusMatchesSerial is the same differential for the
// Algorithm 5 annulus scan.
func TestParallelExactPlusMatchesSerial(t *testing.T) {
	engaged := false
	for seed := int64(1); seed <= 3; seed++ {
		g := clusteredGraph(seed, 2, 32, 20)
		serial := NewSearcher(g)
		ps := NewSearcher(g)
		rnd := rand.New(rand.NewSource(seed))
		for _, k := range []int{4, 8} {
			for qi := 0; qi < 3; qi++ {
				q := graph.V(rnd.Intn(g.NumVertices()))
				// A loose εA keeps the annulus filter set F1 wide enough for
				// the strips to engage on this small fixture.
				sres, serr := serial.ExactPlus(q, k, 0.5)
				for _, workers := range []int{1, 2, 8} {
					ps.SetParallelism(workers)
					pres, perr := ps.ExactPlus(q, k, 0.5)
					if (serr == nil) != (perr == nil) {
						t.Fatalf("seed %d q=%d k=%d workers=%d: error diverges: serial %v, parallel %v",
							seed, q, k, workers, serr, perr)
					}
					if serr != nil {
						continue
					}
					diffResults(t, "exact+", sres, pres)
				}
			}
		}
		if len(ps.parWorkers) > 0 {
			engaged = true
		}
	}
	// The clustered fixtures may legitimately produce thin F1 sets (serial
	// fallback); a spread clique guarantees a wide annulus so the parallel
	// scan provably runs at least once.
	g := spreadClique(5, 64)
	serial := NewSearcher(g)
	ps := NewSearcher(g)
	for _, k := range []int{20, 40} {
		sres, serr := serial.ExactPlus(0, k, 0.5)
		for _, workers := range []int{2, 8} {
			ps.SetParallelism(workers)
			pres, perr := ps.ExactPlus(0, k, 0.5)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("spread clique k=%d workers=%d: error diverges: %v vs %v", k, workers, serr, perr)
			}
			if serr == nil {
				diffResults(t, "exact+ spread", sres, pres)
			}
		}
	}
	if len(ps.parWorkers) > 0 {
		engaged = true
	}
	if !engaged {
		t.Fatalf("parallel exact+ path never engaged on any fixture (F1 always under parMinWidth=%d)", parMinWidth)
	}
}

// TestParallelSearchRegistryAgrees runs every registered algorithm through
// the unified Search entry point serially and with a parallelism budget, on
// the same graph: algorithms without a parallel path must be untouched, the
// exact ones byte-identical.
func TestParallelSearchRegistryAgrees(t *testing.T) {
	g := clusteredGraph(7, 2, 32, 20)
	serial := NewSearcher(g)
	ps := NewSearcher(g)
	ps.SetParallelism(8)
	ctx := context.Background()
	for _, spec := range Algorithms() {
		q := Query{Algo: spec.Name, Q: 5, K: 4}
		if spec.Name == "theta" {
			q.Theta = Float(0.1)
		}
		sres, serr := serial.Search(ctx, q)
		pres, perr := ps.Search(ctx, q)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("%s: error diverges: serial %v, parallel %v", spec.Name, serr, perr)
		}
		if serr != nil {
			continue
		}
		diffResults(t, spec.Name, sres, pres)
	}
}

// TestParallelExactCancellation fires the context mid-enumeration and checks
// that every worker latches promptly: the post-fire work is bounded by the
// tick amortization, ErrCanceled surfaces, and the searcher answers the next
// query correctly.
func TestParallelExactCancellation(t *testing.T) {
	g := spreadClique(11, 64)
	const q, k = 3, 40
	serial := NewSearcher(g)
	want, werr := serial.Exact(q, k)
	if werr != nil {
		t.Fatalf("serial baseline: %v", werr)
	}
	// The full scan examines far more circles than the latch bound below, so
	// a passing bound proves the workers actually stopped early.
	if want.Stats.CirclesExamined < 10_000 {
		t.Fatalf("fixture too small to observe mid-run cancellation (%d circles)", want.Stats.CirclesExamined)
	}

	for _, workers := range []int{2, 8} {
		const countdown = 200
		ps := NewSearcher(g)
		ps.SetParallelism(workers)
		// The shared countdownCtx fake (ctx_test.go) fires after countdown
		// Err consultations — deterministic mid-enumeration cancellation.
		ctx := newCountdown(countdown)
		res, err := ps.ExactCtx(ctx, q, k)
		if res != nil || !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got res=%v err=%v", workers, res, err)
		}
		// Every context consult can be preceded by at most one circle plus 16
		// tick-amortized inner iterations; the countdown allows ~200 consults
		// before firing and each worker gets one last latch window.
		bound := 17*(countdown+workers) + 64
		if got := ps.stats.CirclesExamined; got > bound {
			t.Fatalf("workers=%d: %d circles examined after cancellation budget (bound %d)", workers, got, bound)
		}
		// The searcher must be immediately reusable with a clean context.
		res, err = ps.Exact(q, k)
		if err != nil {
			t.Fatalf("workers=%d: query after cancellation failed: %v", workers, err)
		}
		diffResults(t, "post-cancel", want, res)
	}
}
