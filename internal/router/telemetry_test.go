package router

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sacsearch/client"
	"sacsearch/internal/server"
	"sacsearch/internal/shard"
	"sacsearch/internal/telemetry"
)

// recordedReq is one shard-bound request's correlation headers as the shard
// actually received them.
type recordedReq struct {
	path      string
	requestID string
	traceSpan string
}

type headerRecorder struct {
	mu   sync.Mutex
	reqs []recordedReq
}

func (rec *headerRecorder) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec.mu.Lock()
		rec.reqs = append(rec.reqs, recordedReq{
			path:      r.URL.Path,
			requestID: r.Header.Get("X-Request-Id"),
			traceSpan: r.Header.Get(telemetry.TraceHeader),
		})
		rec.mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

func (rec *headerRecorder) snapshot() []recordedReq {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]recordedReq(nil), rec.reqs...)
}

// spanLog collects the root spans the router's TraceHook hands over.
type spanLog struct {
	mu    sync.Mutex
	roots []*telemetry.Span
}

func (sl *spanLog) hook(s *telemetry.Span) {
	sl.mu.Lock()
	sl.roots = append(sl.roots, s)
	sl.mu.Unlock()
}

func (sl *spanLog) snapshot() []*telemetry.Span {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]*telemetry.Span(nil), sl.roots...)
}

// childNames returns the names of a span's direct children, in order.
func childNames(s *telemetry.Span) []string {
	var names []string
	for _, c := range s.Children() {
		names = append(names, c.Name)
	}
	return names
}

func findChild(s *telemetry.Span, name string) *telemetry.Span {
	for _, c := range s.Children() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// newTracedTopology builds a 2-shard topology whose shard servers record
// the correlation headers they receive, fronted by a router with a live
// registry, a trace hook, and /metrics mounted.
func newTracedTopology(t *testing.T) (routerURL string, rec *headerRecorder, sl *spanLog) {
	t.Helper()
	g := testGraph(200, 900, 91)
	m, err := shard.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec = &headerRecorder{}
	urls := make([][]string, m.Shards)
	for id := 0; id < m.Shards; id++ {
		sub, err := shard.Subgraph(g, m, id)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := shard.NewServing(m, id)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithConfig(fmt.Sprintf("shard-%d", id), sub, server.Config{Shard: sv})
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(rec.wrap(srv))
		t.Cleanup(ts.Close)
		urls[id] = []string{ts.URL}
	}
	sl = &spanLog{}
	rt, err := New(Config{
		Map:          m,
		Shards:       urls,
		Metrics:      telemetry.NewRegistry(),
		ServeMetrics: true,
		TraceHook:    sl.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return ts.URL, rec, sl
}

// TestRouterForwardsRequestID pins satellite behavior the failover story
// depends on: the request id a caller sends to the router is the id every
// shard leg of that request carries, and every leg also carries a
// X-Trace-Span naming a span in the router's own tree — so one id and one
// tree stitch the whole cross-process request together.
func TestRouterForwardsRequestID(t *testing.T) {
	url, rec, sl := newTracedTopology(t)
	cl, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	const reqID = "cli-correlate-7"
	ctx := client.WithRequestID(t.Context(), reqID)
	// Drive all three leg shapes: a query (search, possibly expand legs), a
	// check-in (single owner leg) and an edge insert (up to two legs).
	if _, err := cl.Query(ctx, client.Query{Q: 3, K: 2}); err != nil && !strings.Contains(err.Error(), "no_community") {
		if _, ok := err.(*client.APIError); !ok {
			t.Fatalf("query: %v", err)
		}
	}
	if err := cl.CheckIn(ctx, 5, 0.4, 0.4); err != nil {
		t.Fatalf("checkin: %v", err)
	}
	if _, err := cl.Edge(ctx, 1, 150, true); err != nil {
		t.Fatalf("edge: %v", err)
	}

	reqs := rec.snapshot()
	if len(reqs) == 0 {
		t.Fatal("no shard legs recorded")
	}
	// Collect every span id in every root tree; each leg's X-Trace-Span must
	// name one of them.
	spanIDs := map[string]bool{}
	var collect func(s *telemetry.Span)
	collect = func(s *telemetry.Span) {
		spanIDs[s.ID] = true
		for _, c := range s.Children() {
			collect(c)
		}
	}
	for _, root := range sl.snapshot() {
		collect(root)
	}
	for _, rq := range reqs {
		if rq.requestID != reqID {
			t.Errorf("shard leg %s carried request id %q, want %q", rq.path, rq.requestID, reqID)
		}
		if rq.traceSpan == "" {
			t.Errorf("shard leg %s carried no %s header", rq.path, telemetry.TraceHeader)
		} else if !spanIDs[rq.traceSpan] {
			t.Errorf("shard leg %s carried span id %q not present in any router trace", rq.path, rq.traceSpan)
		}
	}
}

// TestRouterSpanTreeDifferential asserts the trace tree's shape tracks the
// routing decision: a certified query shows exactly one search leg and no
// assembly; an assembled query shows the declined search leg plus an
// assemble span with expand legs and a merge; θ-SAC shows an assemble span
// gathering every shard. The differential then cross-checks the trees
// against sac_router_query_path_total on /metrics.
func TestRouterSpanTreeDifferential(t *testing.T) {
	url, _, sl := newTracedTopology(t)
	cl, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	for v := int64(0); v < 200; v += 17 {
		for _, k := range []int{3, 4, 5} {
			_, err := cl.Query(ctx, client.Query{Q: v, K: k})
			if err != nil {
				if _, ok := err.(*client.APIError); !ok {
					t.Fatalf("query q=%d k=%d: %v", v, k, err)
				}
			}
		}
	}
	if _, err := cl.Query(ctx, client.Query{Q: 3, K: 2, Algo: "theta", Theta: client.Float(0.2)}); err != nil {
		if _, ok := err.(*client.APIError); !ok {
			t.Fatalf("theta query: %v", err)
		}
	}

	var certified, assembled, theta int
	for _, root := range sl.snapshot() {
		if !strings.HasPrefix(root.Name, "POST /v1/query") {
			continue
		}
		search := findChild(root, "shard-search")
		assemble := findChild(root, "assemble")
		switch {
		case search != nil && assemble == nil:
			certified++
			if n := len(root.Children()); n != 1 {
				t.Errorf("certified query has %d children %v, want just the search leg",
					n, childNames(root))
			}
		case search != nil && assemble != nil:
			assembled++
			if findChild(assemble, "shard-expand") == nil {
				t.Errorf("assembled query's assemble span has no expand leg: %v", childNames(assemble))
			}
			if findChild(assemble, "merge") == nil {
				t.Errorf("assembled query's assemble span has no merge: %v", childNames(assemble))
			}
		case search == nil && assemble != nil:
			theta++
			if findChild(assemble, "shard-range") == nil {
				t.Errorf("theta query's assemble span has no range leg: %v", childNames(assemble))
			}
		default:
			t.Errorf("query span with neither search nor assemble children: %v", childNames(root))
		}
	}
	if certified == 0 || assembled == 0 {
		t.Fatalf("differential needs both paths: %d certified, %d assembled", certified, assembled)
	}
	if theta != 1 {
		t.Fatalf("expected exactly 1 theta trace, saw %d", theta)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for metric, want := range map[string]int{
		`sac_router_query_path_total{path="certified"}`: certified,
		`sac_router_query_path_total{path="assembled"}`: assembled,
		`sac_router_query_path_total{path="theta"}`:     theta,
	} {
		if !strings.Contains(text, fmt.Sprintf("%s %d", metric, want)) {
			t.Errorf("metrics missing %s %d:\n%s", metric, want,
				grepLines(text, "sac_router_query_path_total"))
		}
	}
	for _, needle := range []string{
		`sac_router_legs_total{kind="search"}`,
		`sac_router_legs_total{kind="expand"}`,
		`sac_router_legs_total{kind="range"}`,
		"sac_router_expand_rounds_total",
		"sac_http_requests_total",
		"sac_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// grepLines filters a metrics dump down to the lines containing sub, for
// readable failures.
func grepLines(text, sub string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
