package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sacsearch/internal/geom"
)

// buildPath returns 0-1-2-...-(n-1).
func buildPath(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(V(i), V(i+1))
	}
	for i := 0; i < n; i++ {
		b.SetLoc(V(i), geom.Point{X: float64(i), Y: 0})
	}
	return b.Build()
}

func sortedCopy(vs []V) []V {
	out := append([]V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.Degree(0) != 3 || g.Degree(3) != 2 {
		t.Fatalf("degrees = %d, %d", g.Degree(0), g.Degree(3))
	}
	if got := g.AvgDegree(); got != 2.5 {
		t.Fatalf("avg degree = %v", got)
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop: dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	nb := g.Neighbors(0)
	if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
		t.Fatalf("neighbors not sorted: %v", nb)
	}
}

func TestHasEdge(t *testing.T) {
	g := buildPath(5)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("missing path edge")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge 0-2")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("phantom edge 0-4")
	}
}

func TestLocations(t *testing.T) {
	g := buildPath(3)
	if g.Loc(2) != (geom.Point{X: 2, Y: 0}) {
		t.Fatalf("Loc(2) = %v", g.Loc(2))
	}
	if g.Dist(0, 2) != 2 {
		t.Fatalf("Dist = %v", g.Dist(0, 2))
	}
	g.SetLoc(2, geom.Point{X: 0, Y: 5})
	if g.Dist(0, 2) != 5 {
		t.Fatalf("Dist after SetLoc = %v", g.Dist(0, 2))
	}
}

func TestNearestNeighbor(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.SetLoc(0, geom.Point{X: 0, Y: 0})
	b.SetLoc(1, geom.Point{X: 5, Y: 0})
	b.SetLoc(2, geom.Point{X: 1, Y: 0})
	b.SetLoc(3, geom.Point{X: 0.1, Y: 0}) // closest point but not adjacent
	g := b.Build()
	if got := g.NearestNeighbor(0); got != 2 {
		t.Fatalf("NearestNeighbor = %d, want 2", got)
	}
	// Isolated vertex has no nearest neighbor.
	if got := g.NearestNeighbor(3); got != -1 {
		t.Fatalf("NearestNeighbor(isolated) = %d, want -1", got)
	}
}

func TestMCCOf(t *testing.T) {
	g := buildPath(3) // points (0,0), (1,0), (2,0)
	c := g.MCCOf([]V{0, 1, 2})
	if c.R < 0.999 || c.R > 1.001 {
		t.Fatalf("MCC radius = %v, want 1", c.R)
	}
}

func TestLabels(t *testing.T) {
	g := buildPath(2)
	if g.Label(0) != "v0" {
		t.Fatalf("default label = %q", g.Label(0))
	}
	if err := g.SetLabels([]string{"alice", "bob"}); err != nil {
		t.Fatal(err)
	}
	if g.Label(1) != "bob" {
		t.Fatalf("label = %q", g.Label(1))
	}
	if err := g.SetLabels([]string{"tooshort"}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestClone(t *testing.T) {
	g := buildPath(3)
	c := g.Clone()
	c.SetLoc(0, geom.Point{X: 9, Y: 9})
	if g.Loc(0) == (geom.Point{X: 9, Y: 9}) {
		t.Fatal("clone shares locations with original")
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatal("clone lost edges")
	}
}

func TestMarker(t *testing.T) {
	m := NewMarker(10)
	m.Mark(3)
	m.Mark(7)
	if !m.Has(3) || !m.Has(7) || m.Has(0) {
		t.Fatal("mark/has broken")
	}
	m.Unmark(3)
	if m.Has(3) {
		t.Fatal("unmark broken")
	}
	m.Reset()
	if m.Has(7) {
		t.Fatal("reset did not clear")
	}
	m.MarkAll([]V{1, 2, 3})
	if !m.Has(1) || !m.Has(2) || !m.Has(3) || m.Has(4) {
		t.Fatal("MarkAll broken")
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMarkerEpochWrap(t *testing.T) {
	m := NewMarker(3)
	m.epoch = ^uint32(0) // next Reset wraps
	m.Mark(1)
	m.Reset()
	if m.Has(1) {
		t.Fatal("wrapped reset kept stale mark")
	}
	m.Mark(2)
	if !m.Has(2) {
		t.Fatal("mark after wrap broken")
	}
}

func TestBFSFrom(t *testing.T) {
	// Two triangles joined at vertex 2, plus an isolated vertex 6.
	b := NewBuilder(7)
	edges := [][2]V{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {4, 5}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	visited := NewMarker(g.NumVertices())

	all := BFSFrom(g, 0, func(V) bool { return true }, visited, nil)
	if len(all) != 6 {
		t.Fatalf("BFS reached %d vertices, want 6", len(all))
	}
	// Restrict to {0,1,2}: BFS should stay inside.
	in := map[V]bool{0: true, 1: true, 2: true}
	sub := BFSFrom(g, 0, func(v V) bool { return in[v] }, visited, nil)
	if got := sortedCopy(sub); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("restricted BFS = %v", got)
	}
	// Source excluded: empty.
	if got := BFSFrom(g, 0, func(v V) bool { return v != 0 }, visited, nil); len(got) != 0 {
		t.Fatalf("excluded-source BFS = %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (triangle, pair, isolated)", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("3,4 component wrong")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("5 should be alone")
	}
}

func TestComponentOf(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	got := sortedCopy(ComponentOf(g, 0))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ComponentOf(0) = %v", got)
	}
	if got := ComponentOf(g, 4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("ComponentOf(4) = %v", got)
	}
}

func TestRoundTripIO(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	n := 50
	b := NewBuilder(n)
	for i := 0; i < 200; i++ {
		b.AddEdge(V(rnd.Intn(n)), V(rnd.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLoc(V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	g := b.Build()

	var eBuf, lBuf bytes.Buffer
	if err := WriteEdges(&eBuf, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteLocations(&lBuf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&eBuf, &lBuf, n)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < n; v++ {
		a, bnb := g.Neighbors(V(v)), g2.Neighbors(V(v))
		if len(a) != len(bnb) {
			t.Fatalf("vertex %d adjacency mismatch", v)
		}
		for i := range a {
			if a[i] != bnb[i] {
				t.Fatalf("vertex %d adjacency mismatch at %d", v, i)
			}
		}
		if g.Loc(V(v)).Dist(g2.Loc(V(v))) > 1e-6 {
			t.Fatalf("vertex %d location drift", v)
		}
	}
}

func TestReadEdgesErrors(t *testing.T) {
	cases := []string{
		"0",           // too few fields
		"0 x",         // non-numeric
		"0 99",        // out of range
		"-1 0",        // negative
		"nonsense ok", // junk
	}
	for _, tc := range cases {
		if _, err := ReadEdges(strings.NewReader(tc), 3); err == nil {
			t.Errorf("ReadEdges(%q): expected error", tc)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ReadEdges(strings.NewReader("# comment\n\n0 1\n"), 3); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestReadLocationsErrors(t *testing.T) {
	cases := []string{
		"0 1.0",     // too few fields
		"0 x y",     // non-numeric
		"99 0.1 .2", // out of range
	}
	for _, tc := range cases {
		b := NewBuilder(3)
		if err := ReadLocationsInto(strings.NewReader(tc), b); err == nil {
			t.Errorf("ReadLocationsInto(%q): expected error", tc)
		}
	}
}

// Property: for every built graph, adjacency is symmetric, sorted, self-loop
// free and duplicate free.
func TestBuildInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%50) + 2
		rnd := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < int(mRaw%500); i++ {
			b.AddEdge(V(rnd.Intn(n)), V(rnd.Intn(n)))
		}
		g := b.Build()
		total := 0
		for v := 0; v < n; v++ {
			nb := g.Neighbors(V(v))
			total += len(nb)
			for i, u := range nb {
				if u == V(v) {
					return false // self loop
				}
				if i > 0 && nb[i-1] >= u {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(u, V(v)) {
					return false // asymmetric
				}
			}
		}
		return total == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rnd := rand.New(rand.NewSource(9))
	n := 10000
	type edge struct{ u, v V }
	edges := make([]edge, 50000)
	for i := range edges {
		edges[i] = edge{V(rnd.Intn(n)), V(rnd.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := NewBuilder(n)
		for _, e := range edges {
			bb.AddEdge(e.u, e.v)
		}
		_ = bb.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := buildPath(100000)
	visited := NewMarker(g.NumVertices())
	buf := make([]V, 0, g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = BFSFrom(g, 0, func(V) bool { return true }, visited, buf[:0])
	}
}
