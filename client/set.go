package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Set is a client over a set of sacserver endpoints — typically one leader
// and its read replicas. Reads round-robin across every endpoint and fail
// over on 503 or transport errors (a replica shedding stale reads costs one
// extra hop, not an error); writes start at the endpoint that last accepted
// one and fail over the same way, so after a leader promotion the first
// write walks the set once, finds the new leader, and subsequent writes go
// straight there.
//
// An endpoint that answers a write with the read_only code is remembered as
// a replica: later writes skip it on the first pass instead of burning a
// request (and the endpoint's own retry budget) on a node that is known to
// refuse. Flagged endpoints are still probed on a second pass when no other
// endpoint accepts — that is how a promotion is discovered — and still serve
// reads as usual. A Set is safe for concurrent use.
type Set struct {
	clients  []*Client
	next     atomic.Uint64 // read round-robin cursor
	writer   atomic.Int64  // index of the endpoint that last accepted a write
	readOnly []atomic.Bool // endpoints whose last write answer was read_only
}

// NewSet creates a Set over the given base URLs. Order matters only as the
// initial write preference: list the expected leader first. opts apply to
// every per-endpoint client.
func NewSet(baseURLs []string, opts ...Option) (*Set, error) {
	if len(baseURLs) == 0 {
		return nil, errors.New("sac client: a Set needs at least one endpoint")
	}
	s := &Set{
		clients:  make([]*Client, len(baseURLs)),
		readOnly: make([]atomic.Bool, len(baseURLs)),
	}
	for i, u := range baseURLs {
		cl, err := New(u, opts...)
		if err != nil {
			return nil, err
		}
		s.clients[i] = cl
	}
	return s, nil
}

// Clients exposes the per-endpoint clients in NewSet order — for endpoint-
// specific calls like polling each node's Health during a failover drill.
func (s *Set) Clients() []*Client { return s.clients }

// failoverWorthy reports whether err on one endpoint justifies trying the
// next: transport-level failures and 503/429 responses do (the node is
// down, read-only, or shedding); everything else — validation errors, 404s,
// the caller's own context expiring — would fail identically everywhere.
func failoverWorthy(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable ||
			apiErr.Status == http.StatusTooManyRequests
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// read runs call against endpoints starting at the round-robin cursor,
// failing over until one answers.
func (s *Set) read(call func(*Client) error) error {
	start := int((s.next.Add(1) - 1) % uint64(len(s.clients)))
	var lastErr error
	for i := 0; i < len(s.clients); i++ {
		err := call(s.clients[(start+i)%len(s.clients)])
		if !failoverWorthy(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("sac client: all %d endpoints failed: %w", len(s.clients), lastErr)
}

// isReadOnly reports whether err is a server refusal to write because the
// node is a replica (or a demoted leader) — a durable property of the
// endpoint, unlike the transient conditions failoverWorthy covers.
func isReadOnly(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Code == "read_only"
}

// write runs call against endpoints starting at the last known writer,
// remembering whichever endpoint accepts. Pass one skips endpoints flagged
// read-only by an earlier write; pass two probes exactly those, so a
// just-promoted leader is found even when every endpoint was flagged.
func (s *Set) write(call func(*Client) error) error {
	start := int(s.writer.Load()) % len(s.clients)
	var lastErr error
	tried := make([]bool, len(s.clients))
	attempt := func(idx int) (done bool, err error) {
		tried[idx] = true
		err = call(s.clients[idx])
		if err == nil {
			s.readOnly[idx].Store(false)
			s.writer.Store(int64(idx))
			return true, nil
		}
		if isReadOnly(err) {
			s.readOnly[idx].Store(true)
			return false, err
		}
		if !failoverWorthy(err) {
			return true, err
		}
		return false, err
	}
	for i := 0; i < len(s.clients); i++ {
		idx := (start + i) % len(s.clients)
		if s.readOnly[idx].Load() {
			continue
		}
		done, err := attempt(idx)
		if done {
			return err
		}
		lastErr = err
	}
	for i := 0; i < len(s.clients); i++ {
		idx := (start + i) % len(s.clients)
		if tried[idx] {
			continue
		}
		done, err := attempt(idx)
		if done {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("sac client: no endpoint accepted the write (%d tried): %w", len(s.clients), lastErr)
}

// Query runs one SAC query on any endpoint (round-robin with failover).
func (s *Set) Query(ctx context.Context, q Query) (*Result, error) {
	var out *Result
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.Query(ctx, q)
		return e
	})
	return out, err
}

// Batch answers many queries on any endpoint (round-robin with failover).
func (s *Set) Batch(ctx context.Context, queries []BatchQuery, opt *BatchOptions) ([]BatchItem, error) {
	var out []BatchItem
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.Batch(ctx, queries, opt)
		return e
	})
	return out, err
}

// Vertex fetches one vertex from any endpoint (round-robin with failover).
func (s *Set) Vertex(ctx context.Context, id int64) (*Vertex, error) {
	var out *Vertex
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.Vertex(ctx, id)
		return e
	})
	return out, err
}

// Algorithms fetches the registry from any endpoint.
func (s *Set) Algorithms(ctx context.Context) ([]AlgoInfo, error) {
	var out []AlgoInfo
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.Algorithms(ctx)
		return e
	})
	return out, err
}

// CheckIn moves vertex v through whichever endpoint accepts writes.
func (s *Set) CheckIn(ctx context.Context, v int64, x, y float64) error {
	return s.write(func(c *Client) error { return c.CheckIn(ctx, v, x, y) })
}

// Edge mutates one friendship edge through whichever endpoint accepts
// writes.
func (s *Set) Edge(ctx context.Context, u, v int64, insert bool) (*EdgeResult, error) {
	var out *EdgeResult
	err := s.write(func(c *Client) error {
		var e error
		out, e = c.Edge(ctx, u, v, insert)
		return e
	})
	return out, err
}
