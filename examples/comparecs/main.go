// Baseline comparison (the paper's Section 5.2.2 in miniature): run SAC
// search and the prior community-retrieval methods — Global and Local
// community search, GeoModu community detection — on the same queries and
// compare spatial compactness (radius, distPr) and structure cohesiveness
// (average internal degree).
//
//	go run ./examples/comparecs
package main

import (
	"context"
	"fmt"
	"log"

	"sacsearch"
)

func main() {
	ds, err := sacsearch.LoadDataset("gowalla", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("dataset %s (scaled): %d vertices, %d edges\n\n", ds.Name, g.NumVertices(), g.NumEdges())

	queries := sacsearch.QueryWorkload(g, 4, 15, 11)
	const k = 4

	sac := sacsearch.NewSearcher(g)
	base := sacsearch.NewBaselineSearcher(g)
	geo1 := sacsearch.RunGeoModu(g, 1)
	geo2 := sacsearch.RunGeoModu(g, 2)

	methods := []struct {
		name string
		run  func(q sacsearch.V) []sacsearch.V
	}{
		{"Global", func(q sacsearch.V) []sacsearch.V { return base.Global(q, k) }},
		{"Local", func(q sacsearch.V) []sacsearch.V { return base.Local(q, k) }},
		{"GeoModu(µ=1)", func(q sacsearch.V) []sacsearch.V { return geo1.CommunityOf(q) }},
		{"GeoModu(µ=2)", func(q sacsearch.V) []sacsearch.V { return geo2.CommunityOf(q) }},
		{"SAC (Exact+)", func(q sacsearch.V) []sacsearch.V {
			res, err := sac.Search(context.Background(), sacsearch.Query{Algo: "exact+", Q: q, K: k})
			if err != nil {
				return nil
			}
			return res.Members
		}},
	}

	fmt.Printf("%-14s %10s %10s %10s %8s\n", "method", "radius", "distPr", "avg deg", "size")
	for _, m := range methods {
		var radius, distPr, avgDeg, size float64
		found := 0
		for _, q := range queries {
			members := m.run(q)
			if len(members) == 0 {
				continue
			}
			found++
			radius += sacsearch.CommunityRadius(g, members)
			distPr += sacsearch.CommunityDistPr(g, members, 1)
			avgDeg += sacsearch.AvgInternalDegree(g, members)
			size += float64(len(members))
		}
		if found == 0 {
			fmt.Printf("%-14s found no communities\n", m.name)
			continue
		}
		f := float64(found)
		fmt.Printf("%-14s %10.4f %10.4f %10.2f %8.1f\n",
			m.name, radius/f, distPr/f, avgDeg/f, size/f)
	}

	fmt.Println("\nreading the table (paper's Figure 10):")
	fmt.Println(" - Global/Local ignore locations: big radii, strong degrees")
	fmt.Println(" - GeoModu is spatially tighter but its blocks ignore k")
	fmt.Println(" - SAC search is tight on both axes")
}
