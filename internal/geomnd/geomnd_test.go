package geomnd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sacsearch/internal/geom"
)

func randomPoints(rnd *rand.Rand, n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for t := range p {
			p[t] = rnd.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestMEBEmptyAndSingle(t *testing.T) {
	if b := MEB(nil); b.R != -1 {
		t.Fatalf("empty MEB = %+v", b)
	}
	b := MEB([]Point{{0.3, 0.4, 0.5}})
	if b.R != 0 || b.C.Dist(Point{0.3, 0.4, 0.5}) != 0 {
		t.Fatalf("single-point MEB = %+v", b)
	}
}

func TestMEBPair(t *testing.T) {
	// Two points: ball centered at the midpoint with radius half the
	// distance, in any dimension.
	for d := 1; d <= 5; d++ {
		a := make(Point, d)
		b := make(Point, d)
		for i := 0; i < d; i++ {
			b[i] = 1
		}
		ball := MEB([]Point{a, b})
		want := math.Sqrt(float64(d)) / 2
		if math.Abs(ball.R-want) > 1e-9 {
			t.Fatalf("d=%d: R = %v, want %v", d, ball.R, want)
		}
		for i := 0; i < d; i++ {
			if math.Abs(ball.C[i]-0.5) > 1e-9 {
				t.Fatalf("d=%d: center = %v", d, ball.C)
			}
		}
	}
}

func TestMEBRegularSimplex3D(t *testing.T) {
	// A regular tetrahedron with unit edge: circumradius √(3/8).
	s := 1 / math.Sqrt2
	pts := []Point{
		{1, 0, -s}, {-1, 0, -s}, {0, 1, s}, {0, -1, s},
	}
	// Edge length: |p0,p1| = 2; circumradius of a regular tetrahedron with
	// edge a is a·√(3/8).
	ball := MEB(pts)
	want := 2 * math.Sqrt(3.0/8.0)
	if math.Abs(ball.R-want) > 1e-9 {
		t.Fatalf("tetrahedron R = %v, want %v", ball.R, want)
	}
	for _, p := range pts {
		if math.Abs(ball.C.Dist(p)-ball.R) > 1e-9 {
			t.Fatalf("vertex %v not on boundary (dist %v, R %v)", p, ball.C.Dist(p), ball.R)
		}
	}
}

func TestMEBMatchesPlanarMCC(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rnd.Intn(60)
		pts2 := make([]geom.Point, n)
		ptsN := make([]Point, n)
		for i := 0; i < n; i++ {
			x, y := rnd.Float64(), rnd.Float64()
			pts2[i] = geom.Point{X: x, Y: y}
			ptsN[i] = Point{x, y}
		}
		mcc := geom.MCC(pts2)
		meb := MEB(ptsN)
		if math.Abs(mcc.R-meb.R) > 1e-7 {
			t.Fatalf("trial %d: planar MCC R=%v vs MEB R=%v", trial, mcc.R, meb.R)
		}
		if mcc.C.Dist(geom.Point{X: meb.C[0], Y: meb.C[1]}) > 1e-6 {
			t.Fatalf("trial %d: centers differ: %v vs %v", trial, mcc.C, meb.C)
		}
	}
}

func TestMEBContainsAll(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 10; trial++ {
			pts := randomPoints(rnd, 5+rnd.Intn(200), d)
			ball := MEB(pts)
			for i, p := range pts {
				if !ball.Contains(p) {
					t.Fatalf("d=%d trial %d: point %d outside (dist %v, R %v)",
						d, trial, i, ball.C.Dist(p), ball.R)
				}
			}
		}
	}
}

// Minimality oracle: for small point sets, the MEB radius must equal the
// smallest radius over all boundary-support subsets of size ≤ d+1 whose
// circumscribed ball covers everything.
func TestMEBMinimalityOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for _, d := range []int{2, 3} {
		for trial := 0; trial < 15; trial++ {
			n := 4 + rnd.Intn(5)
			pts := randomPoints(rnd, n, d)
			got := MEB(pts)

			best := math.Inf(1)
			var rec func(start int, support []Point)
			rec = func(start int, support []Point) {
				if len(support) > 0 {
					if b, ok := ballFromSupport(support); ok && b.R < best {
						covers := true
						for _, p := range pts {
							if !b.Contains(p) {
								covers = false
								break
							}
						}
						if covers {
							best = b.R
						}
					}
				}
				if len(support) == d+1 {
					return
				}
				for i := start; i < n; i++ {
					rec(i+1, append(support, pts[i]))
				}
			}
			rec(0, nil)
			if math.Abs(got.R-best) > 1e-7 {
				t.Fatalf("d=%d trial %d: MEB R=%v, oracle R=%v", d, trial, got.R, best)
			}
		}
	}
}

func TestMEBDuplicatesAndDegenerate(t *testing.T) {
	// All points identical.
	same := []Point{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}
	if b := MEB(same); b.R > 1e-12 {
		t.Fatalf("identical points R = %v", b.R)
	}
	// Collinear points in 3-D: ball spans the extremes.
	col := []Point{{0, 0, 0}, {0.25, 0.25, 0.25}, {0.5, 0.5, 0.5}, {1, 1, 1}}
	b := MEB(col)
	want := math.Sqrt(3) / 2
	if math.Abs(b.R-want) > 1e-9 {
		t.Fatalf("collinear R = %v, want %v", b.R, want)
	}
	for _, p := range col {
		if !b.Contains(p) {
			t.Fatalf("collinear point %v outside", p)
		}
	}
	// Duplicates mixed with distinct points.
	mix := []Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0.5, 0.3}}
	b = MEB(mix)
	if math.Abs(b.R-0.5) > 1e-9 {
		t.Fatalf("mixed duplicates R = %v, want 0.5", b.R)
	}
}

func TestMEBDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed dimensions did not panic")
		}
	}()
	MEB([]Point{{1, 2}, {1, 2, 3}})
}

// Property: the MEB radius is sandwiched by half the diameter (max pairwise
// distance) and the diameter itself, in any dimension.
func TestMEBRadiusBoundsProperty(t *testing.T) {
	check := func(seed int64, dRaw uint8, nRaw uint8) bool {
		d := int(dRaw)%4 + 2  // 2..5
		n := int(nRaw)%40 + 2 // 2..41
		rnd := rand.New(rand.NewSource(seed))
		pts := randomPoints(rnd, n, d)
		ball := MEB(pts)
		var diam float64
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if dd := pts[i].Dist(pts[j]); dd > diam {
					diam = dd
				}
			}
		}
		return ball.R >= diam/2-1e-9 && ball.R <= diam+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMEB3D(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	pts := randomPoints(rnd, 10000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MEB(pts)
	}
}
