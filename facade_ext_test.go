package sacsearch_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sacsearch"
)

func TestFacadeBatch(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcher(g)
	queries := sacsearch.BatchWorkload([]sacsearch.V{0, 3, 0}, 2)
	items := sacsearch.BatchSearch(s, queries, sacsearch.BatchOptions{
		Algorithm: sacsearch.BatchExactPlus,
		Workers:   2,
	})
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if !it.Result.Contains(queries[i].Q) {
			t.Fatalf("item %d misses its query vertex", i)
		}
	}
	// The duplicate shares the first answer.
	if items[0].Result != items[2].Result {
		t.Fatal("duplicate host recomputed")
	}
	// Direct equivalence with a single query.
	want, err := s.ExactPlus(0, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Result.Size() != want.Size() {
		t.Fatalf("batch %v vs direct %v", items[0].Result.Members, want.Members)
	}
}

func TestFacadeBatchStream(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcher(g)
	in := make(chan sacsearch.BatchQuery, 2)
	in <- sacsearch.BatchQuery{Q: 0, K: 2}
	in <- sacsearch.BatchQuery{Q: 3, K: 2}
	close(in)
	n := 0
	for it := range sacsearch.BatchStream(s, in, sacsearch.BatchOptions{Workers: 2}) {
		if it.Err != nil {
			t.Fatalf("stream: %v", it.Err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("stream items = %d", n)
	}
}

func TestFacadeKClique(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcherWithStructure(g, sacsearch.StructureKClique)
	// The triangle {0,1,2} is a 3-clique; it is tighter than {0,3,4}.
	res, err := s.ExactPlus(0, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 || !res.Contains(1) || !res.Contains(2) {
		t.Fatalf("3-clique members = %v", res.Members)
	}
	// Vertex 5 is in no triangle.
	if _, err := s.AppFast(5, 3, 0.5); !errors.Is(err, sacsearch.ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeMinDiam(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcher(g)
	two, err := s.MinDiam2Approx(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	lens, err := s.MinDiamLens(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The tight triangle has diameter √2·0.01 ≈ 0.0141.
	wantDiam := math.Hypot(0.01, 0.01)
	if math.Abs(lens.Delta-wantDiam) > 1e-9 {
		t.Fatalf("lens diameter = %v, want %v", lens.Delta, wantDiam)
	}
	if lens.Delta > two.Delta+1e-9 {
		t.Fatalf("lens (%v) worse than 2-approx (%v)", lens.Delta, two.Delta)
	}
	if d := sacsearch.CommunityDiameter(g, lens.Members); math.Abs(d-lens.Delta) > 1e-12 {
		t.Fatalf("CommunityDiameter = %v, Delta = %v", d, lens.Delta)
	}
}

// Property: on generated social graphs, for any seed the exact radius never
// exceeds any approximation's radius, and AppInc respects its factor-2
// guarantee.
func TestFacadeRadiusOrderingProperty(t *testing.T) {
	check := func(seed uint8) bool {
		g := sacsearch.GenerateSocialGraph(400, 2400, int64(seed))
		qs := sacsearch.QueryWorkload(g, 4, 3, int64(seed)+1)
		if len(qs) == 0 {
			return true
		}
		s := sacsearch.NewSearcher(g)
		for _, q := range qs {
			opt, err := s.ExactPlus(q, 4, 1e-3)
			if err != nil {
				continue
			}
			inc, err := s.AppInc(q, 4)
			if err != nil {
				return false
			}
			if inc.Radius() < opt.Radius()-1e-9 {
				return false // an approximation beat the exact optimum
			}
			if opt.Radius() > 0 && inc.Radius()/opt.Radius() > 2+1e-9 {
				return false // AppInc guarantee violated
			}
			acc, err := s.AppAcc(q, 4, 0.5)
			if err != nil {
				return false
			}
			if opt.Radius() > 0 && acc.Radius()/opt.Radius() > 1.5+1e-9 {
				return false // AppAcc guarantee violated
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch answers are identical to sequential answers for any seed
// and worker count.
func TestFacadeBatchEquivalenceProperty(t *testing.T) {
	check := func(seed uint8, workersRaw uint8) bool {
		workers := int(workersRaw)%4 + 1
		g := sacsearch.GenerateSocialGraph(300, 1800, int64(seed))
		qs := sacsearch.QueryWorkload(g, 4, 5, int64(seed)+7)
		if len(qs) == 0 {
			return true
		}
		s := sacsearch.NewSearcher(g)
		items := sacsearch.BatchSearch(s, sacsearch.BatchWorkload(qs, 4),
			sacsearch.BatchOptions{Workers: workers})
		for i, q := range qs {
			want, err := s.AppFast(q, 4, 0.5)
			if (err != nil) != (items[i].Err != nil) {
				return false
			}
			if err != nil {
				continue
			}
			if items[i].Result.Size() != want.Size() || items[i].Result.Radius() != want.Radius() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeDynamicTopology exercises the public dynamic-topology surface:
// edge churn through the Searcher, churn-aware replay, and the epoch
// accessors.
func TestFacadeDynamicTopology(t *testing.T) {
	g := sacsearch.GenerateSocialGraph(600, 3600, 12)
	s := sacsearch.NewSearcher(g)
	epoch := g.TopoEpoch()
	churn := sacsearch.GenerateEdgeChurn(g, 60, 13)
	if len(churn) != 60 {
		t.Fatalf("churn events = %d", len(churn))
	}
	checkins := sacsearch.GenerateCheckins(g, 14)
	movers := sacsearch.SelectMovers(g, checkins, 5, 4)
	if len(movers) == 0 {
		t.Skip("no movers in fixture")
	}
	search := func(q sacsearch.V, k int) ([]sacsearch.V, sacsearch.Circle, error) {
		res, err := s.AppFast(q, k, 0.5)
		if err != nil {
			return nil, sacsearch.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
	timelines, err := sacsearch.ReplayWithEdges(g, checkins, churn, movers, 450, 2, search, sacsearch.ApplyEdgesVia(s))
	if err != nil {
		t.Fatal(err)
	}
	if g.TopoEpoch() == epoch {
		t.Fatal("replay applied no topology changes")
	}
	total := 0
	for _, snaps := range timelines {
		total += len(snaps)
	}
	if total == 0 {
		t.Fatal("no snapshots recorded")
	}
	// Replayed searcher agrees with one built fresh on the final state.
	fresh := sacsearch.NewSearcher(g)
	for _, q := range movers {
		rw, errW := s.AppFast(q, 2, 0.5)
		rc, errC := fresh.AppFast(q, 2, 0.5)
		if (errW == nil) != (errC == nil) {
			t.Fatalf("q=%d: replayed err %v, fresh err %v", q, errW, errC)
		}
		if errW == nil && rw.MCC != rc.MCC {
			t.Fatalf("q=%d: replayed MCC %+v != fresh %+v", q, rw.MCC, rc.MCC)
		}
	}
}
