package community

import (
	"math"

	"sacsearch/internal/graph"
)

// GeoModu is the community-detection baseline of Chen et al. [4]: edges are
// re-weighted by spatial proximity, e_ij = 1/d_ij^µ with decay factor µ ∈
// {1, 2}, and communities are found by fast modularity maximization (the
// Louvain method). Unlike SAC search this partitions the whole graph with no
// reference to a query vertex; queries just look up their block.
//
// Vertices at identical locations get the weight of distance minGeoDist to
// keep weights finite.

// minGeoDist floors pairwise distances when computing 1/d^µ weights.
const minGeoDist = 1e-6

// Partition is the result of one GeoModu run: a block id per vertex.
type Partition struct {
	g     *graph.Graph
	comm  []int32
	count int
	mu    float64
}

// NumCommunities returns the number of blocks in the partition.
func (p *Partition) NumCommunities() int { return p.count }

// Block returns the block id of v.
func (p *Partition) Block(v graph.V) int32 { return p.comm[v] }

// CommunityOf returns all vertices sharing q's block, ascending.
func (p *Partition) CommunityOf(q graph.V) []graph.V {
	var out []graph.V
	want := p.comm[q]
	for v := range p.comm {
		if p.comm[v] == want {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// RunGeoModu detects communities on g with decay factor mu. The run is
// deterministic: vertices are swept in id order.
func RunGeoModu(g *graph.Graph, mu float64) *Partition {
	lg := newWeightedFromGraph(g, mu)
	assign := louvain(lg)
	count := 0
	seen := map[int32]int32{}
	comm := make([]int32, len(assign))
	for v, c := range assign {
		id, ok := seen[c]
		if !ok {
			id = int32(count)
			seen[c] = id
			count++
		}
		comm[v] = id
	}
	return &Partition{g: g, comm: comm, count: count, mu: mu}
}

// weighted is an undirected weighted multigraph used by the Louvain levels.
type weighted struct {
	n     int
	adjTo [][]int32
	adjW  [][]float64
	self  []float64 // self-loop weight (internal weight of an aggregated block)
	total float64   // sum of all edge weights, self-loops counted once
}

func newWeightedFromGraph(g *graph.Graph, mu float64) *weighted {
	n := g.NumVertices()
	w := &weighted{
		n:     n,
		adjTo: make([][]int32, n),
		adjW:  make([][]float64, n),
		self:  make([]float64, n),
	}
	for u := 0; u < n; u++ {
		nb := g.Neighbors(graph.V(u))
		w.adjTo[u] = make([]int32, 0, len(nb))
		w.adjW[u] = make([]float64, 0, len(nb))
		for _, v := range nb {
			d := g.Dist(graph.V(u), v)
			if d < minGeoDist {
				d = minGeoDist
			}
			ew := 1 / math.Pow(d, mu)
			w.adjTo[u] = append(w.adjTo[u], v)
			w.adjW[u] = append(w.adjW[u], ew)
			if graph.V(u) < v {
				w.total += ew
			}
		}
	}
	return w
}

// strength returns the weighted degree of v (self-loops count twice, as is
// standard in modularity).
func (w *weighted) strength(v int32) float64 {
	s := 2 * w.self[v]
	for _, ew := range w.adjW[v] {
		s += ew
	}
	return s
}

// louvain runs the two-phase Louvain method to convergence and returns the
// block assignment for the original vertices.
func louvain(w *weighted) []int32 {
	// assign[v] = block of original vertex v, tracked through aggregations.
	assign := make([]int32, w.n)
	for v := range assign {
		assign[v] = int32(v)
	}
	cur := w
	for level := 0; level < 32; level++ {
		comm, moved := localMove(cur)
		if !moved {
			break
		}
		// Renumber blocks densely.
		next := int32(0)
		remap := make(map[int32]int32, cur.n)
		for v := 0; v < cur.n; v++ {
			if _, ok := remap[comm[v]]; !ok {
				remap[comm[v]] = next
				next++
			}
		}
		for v := 0; v < cur.n; v++ {
			comm[v] = remap[comm[v]]
		}
		// Propagate to original vertices.
		for ov := range assign {
			assign[ov] = comm[assign[ov]]
		}
		if int(next) == cur.n {
			break // no aggregation happened
		}
		cur = aggregate(cur, comm, int(next))
	}
	return assign
}

// localMove is Louvain phase 1: greedily move vertices between blocks while
// modularity improves. It returns the block assignment and whether anything
// moved.
func localMove(w *weighted) ([]int32, bool) {
	comm := make([]int32, w.n)
	sigma := make([]float64, w.n) // total strength per block
	for v := 0; v < w.n; v++ {
		comm[v] = int32(v)
		sigma[v] = w.strength(int32(v))
	}
	if w.total <= 0 {
		return comm, false
	}
	m2 := 2 * w.total
	// neighWeight[c] accumulates edge weight from the vertex under
	// consideration into block c; touched tracks which entries are dirty.
	neighWeight := make([]float64, w.n)
	touched := make([]int32, 0, 64)

	anyMoved := false
	for sweep := 0; sweep < 64; sweep++ {
		movedThisSweep := false
		for v := 0; v < w.n; v++ {
			vc := comm[v]
			kv := w.strength(int32(v))
			// Collect weights to neighboring blocks.
			touched = touched[:0]
			for i, u := range w.adjTo[v] {
				c := comm[u]
				if int32(v) == u {
					continue
				}
				if neighWeight[c] == 0 {
					touched = append(touched, c)
				}
				neighWeight[c] += w.adjW[v][i]
			}
			// Remove v from its block.
			sigma[vc] -= kv
			// Gain of joining block c: w(v→c) − σ(c)·k(v)/2m. Staying put is
			// the baseline.
			bestC := vc
			bestGain := neighWeight[vc] - sigma[vc]*kv/m2
			for _, c := range touched {
				if c == vc {
					continue
				}
				gain := neighWeight[c] - sigma[c]*kv/m2
				if gain > bestGain+1e-12 {
					bestGain = gain
					bestC = c
				}
			}
			sigma[bestC] += kv
			if bestC != vc {
				comm[v] = bestC
				movedThisSweep = true
				anyMoved = true
			}
			// Reset scratch.
			for _, c := range touched {
				neighWeight[c] = 0
			}
		}
		if !movedThisSweep {
			break
		}
	}
	return comm, anyMoved
}

// aggregate is Louvain phase 2: collapse each block into a super-vertex.
func aggregate(w *weighted, comm []int32, blocks int) *weighted {
	out := &weighted{
		n:     blocks,
		adjTo: make([][]int32, blocks),
		adjW:  make([][]float64, blocks),
		self:  make([]float64, blocks),
		total: w.total,
	}
	// Accumulate cross-block weights in maps, then flatten.
	cross := make([]map[int32]float64, blocks)
	for v := 0; v < w.n; v++ {
		cv := comm[v]
		out.self[cv] += w.self[v]
		for i, u := range w.adjTo[v] {
			cu := comm[u]
			ew := w.adjW[v][i]
			if cu == cv {
				// Each internal edge appears twice across the two endpoints.
				out.self[cv] += ew / 2
				continue
			}
			if cross[cv] == nil {
				cross[cv] = map[int32]float64{}
			}
			cross[cv][cu] += ew
		}
	}
	for c := 0; c < blocks; c++ {
		for to, ew := range cross[c] {
			out.adjTo[c] = append(out.adjTo[c], to)
			out.adjW[c] = append(out.adjW[c], ew)
		}
	}
	return out
}

// Modularity returns the weighted modularity of the partition under the
// 1/d^µ edge weights — exposed for tests and for reporting Geo-Modularity.
func Modularity(g *graph.Graph, comm []int32, mu float64) float64 {
	w := newWeightedFromGraph(g, mu)
	if w.total <= 0 {
		return 0
	}
	m2 := 2 * w.total
	nBlocks := 0
	for _, c := range comm {
		if int(c)+1 > nBlocks {
			nBlocks = int(c) + 1
		}
	}
	inW := make([]float64, nBlocks)
	totW := make([]float64, nBlocks)
	for v := 0; v < w.n; v++ {
		c := comm[v]
		totW[c] += w.strength(int32(v))
		for i, u := range w.adjTo[v] {
			if comm[u] == c {
				inW[c] += w.adjW[v][i] // counts each internal edge twice
			}
		}
	}
	q := 0.0
	for c := 0; c < nBlocks; c++ {
		q += inW[c]/m2 - (totW[c]/m2)*(totW[c]/m2)
	}
	return q
}
