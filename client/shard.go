package client

import (
	"context"
	"net/http"
)

// The /v1/shard/* methods speak the router-facing shard protocol. They are
// what sacrouter uses against each shard's endpoint group; ordinary
// applications talk to the router's /v1 surface and never need these.

// ShardInfo describes one shard node's place in a sharded topology, as
// served by /v1/shard/info.
type ShardInfo struct {
	ShardID int `json:"shardId"`
	Shards  int `json:"shards"`
	// MapChecksum identifies the shard-map artifact the node was loaded
	// from; a router refuses to mix shards from different maps.
	MapChecksum uint32 `json:"mapChecksum"`
	Vertices    int    `json:"vertices"`
	Owned       int    `json:"owned"`
	Ghosts      int    `json:"ghosts"`
	Edges       int    `json:"edges"`
	Role        string `json:"role"`
}

// ShardSearchResult is a shard's verdict on one query. Contained=true means
// the verdict is certified equal to a whole-graph answer: either
// NoCommunity, or Result. Contained=false means the community may cross
// shard boundaries and the caller must scatter-gather.
type ShardSearchResult struct {
	Contained   bool    `json:"contained"`
	NoCommunity bool    `json:"noCommunity"`
	Result      *Result `json:"result"`
}

// ShardVertex is one shard-owned vertex with its authoritative location and
// full adjacency.
type ShardVertex struct {
	V   int64   `json:"v"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Adj []int64 `json:"adj"`
}

// ShardExpansion is the owned part of a k-core closure plus the frontier
// vertices owned by other shards.
type ShardExpansion struct {
	Members  []ShardVertex `json:"members"`
	Frontier []int64       `json:"frontier"`
}

// ShardInfo fetches /v1/shard/info.
func (c *Client) ShardInfo(ctx context.Context) (*ShardInfo, error) {
	var out ShardInfo
	if err := c.do(ctx, http.MethodGet, "/v1/shard/info", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardSearch asks one shard for its certified verdict on q.
func (c *Client) ShardSearch(ctx context.Context, q Query) (*ShardSearchResult, error) {
	var out ShardSearchResult
	if err := c.do(ctx, http.MethodPost, "/v1/shard/search", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardExpand fetches the shard-local optimistic k-core closure around the
// given seeds (which this shard must own).
func (c *Client) ShardExpand(ctx context.Context, k int, seeds []int64) (*ShardExpansion, error) {
	req := struct {
		K     int     `json:"k"`
		Seeds []int64 `json:"seeds"`
	}{k, seeds}
	var out ShardExpansion
	if err := c.do(ctx, http.MethodPost, "/v1/shard/expand", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardRange fetches every vertex the shard owns inside the closed disk of
// radius r around (x, y).
func (c *Client) ShardRange(ctx context.Context, x, y, r float64) ([]ShardVertex, error) {
	req := struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
		R float64 `json:"r"`
	}{x, y, r}
	var out struct {
		Members []ShardVertex `json:"members"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/shard/range", req, &out); err != nil {
		return nil, err
	}
	return out.Members, nil
}

// ShardInfo fetches shard info from any endpoint of the set.
func (s *Set) ShardInfo(ctx context.Context) (*ShardInfo, error) {
	var out *ShardInfo
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.ShardInfo(ctx)
		return e
	})
	return out, err
}

// ShardSearch asks any endpoint of the set for its certified verdict on q.
func (s *Set) ShardSearch(ctx context.Context, q Query) (*ShardSearchResult, error) {
	var out *ShardSearchResult
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.ShardSearch(ctx, q)
		return e
	})
	return out, err
}

// ShardExpand fetches the shard-local closure from any endpoint of the set.
func (s *Set) ShardExpand(ctx context.Context, k int, seeds []int64) (*ShardExpansion, error) {
	var out *ShardExpansion
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.ShardExpand(ctx, k, seeds)
		return e
	})
	return out, err
}

// ShardRange fetches the in-disk owned vertices from any endpoint of the
// set.
func (s *Set) ShardRange(ctx context.Context, x, y, r float64) ([]ShardVertex, error) {
	var out []ShardVertex
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.ShardRange(ctx, x, y, r)
		return e
	})
	return out, err
}

// Health fetches /v1/health from any endpoint of the set.
func (s *Set) Health(ctx context.Context) (*Health, error) {
	var out *Health
	err := s.read(func(c *Client) error {
		var e error
		out, e = c.Health(ctx)
		return e
	})
	return out, err
}
