package core

import (
	"errors"
	"math"
	"testing"

	"sacsearch/internal/graph"
	"sacsearch/internal/kclique"
)

// validateCliqueCommunity checks the SAC properties under the k-clique
// metric: q inside, connected, and every member participating in a k-clique
// of the community.
func validateCliqueCommunity(t *testing.T, g *graph.Graph, res *Result, q graph.V, k int) {
	t.Helper()
	if !res.Contains(q) {
		t.Fatalf("community misses q=%d: %v", q, res.Members)
	}
	in := map[graph.V]bool{}
	for _, v := range res.Members {
		in[v] = true
	}
	// Connectivity.
	seen := map[graph.V]bool{q: true}
	queue := []graph.V{q}
	for head := 0; head < len(queue); head++ {
		for _, u := range g.Neighbors(queue[head]) {
			if in[u] && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	if len(seen) != len(res.Members) {
		t.Fatalf("community disconnected: %d of %d reachable", len(seen), len(res.Members))
	}
	// Clique membership (skip the degenerate k ≤ 1 community {q}).
	if k >= 2 && len(res.Members) > 1 {
		chk := kclique.NewChecker(g)
		for _, v := range res.Members {
			if chk.KCliqueWithin(res.Members, v, k) == nil {
				t.Fatalf("member %d is in no %d-clique of the community %v", v, k, res.Members)
			}
		}
	}
	// MCC covers all members.
	for _, v := range res.Members {
		if !res.MCC.Contains(g.Loc(v)) {
			t.Fatalf("MCC %v misses member %d at %v", res.MCC, v, g.Loc(v))
		}
	}
}

func TestKCliqueStructurePaperExample(t *testing.T) {
	// Figure 3 under the 3-clique metric: the seed cliques of Q are the two
	// triangles {Q,A,B} and {Q,C,D}; {C,D,E} extends the second through the
	// shared edge C-D. The spatially optimal community is the triangle
	// {Q,C,D} with MCC radius 1.5, as in the k-core variant.
	g := figure3()
	s := NewSearcherWithStructure(g, StructureKClique)

	res, err := s.Exact(vQ, 3)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	validateCliqueCommunity(t, g, res, vQ, 3)
	if !membersEqual(res.Members, vQ, vC, vD) {
		t.Fatalf("Exact members = %v, want {Q,C,D}", res.Members)
	}
	if math.Abs(res.Radius()-1.5) > 1e-9 {
		t.Fatalf("Exact radius = %v, want 1.5", res.Radius())
	}

	resP, err := s.ExactPlus(vQ, 3, 0.1)
	if err != nil {
		t.Fatalf("ExactPlus: %v", err)
	}
	validateCliqueCommunity(t, g, resP, vQ, 3)
	if math.Abs(resP.Radius()-1.5) > 1e-9 {
		t.Fatalf("ExactPlus radius = %v, want 1.5", resP.Radius())
	}

	// Approximations stay within their guarantees relative to ropt = 1.5.
	for _, tc := range []struct {
		name  string
		run   func() (*Result, error)
		bound float64
	}{
		{"AppInc", func() (*Result, error) { return s.AppInc(vQ, 3) }, 2.0},
		{"AppFast", func() (*Result, error) { return s.AppFast(vQ, 3, 0.5) }, 2.5},
		{"AppAcc", func() (*Result, error) { return s.AppAcc(vQ, 3, 0.5) }, 1.5},
	} {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		validateCliqueCommunity(t, g, res, vQ, 3)
		if ratio := res.Radius() / 1.5; ratio > tc.bound+1e-9 {
			t.Fatalf("%s ratio = %v exceeds bound %v", tc.name, ratio, tc.bound)
		}
	}
}

func TestKCliqueTrivialK(t *testing.T) {
	g := figure3()
	s := NewSearcherWithStructure(g, StructureKClique)

	// k = 0 and k = 1: q alone (a vertex is a 1-clique).
	for k := 0; k <= 1; k++ {
		res, err := s.AppFast(vQ, k, 0.5)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !membersEqual(res.Members, vQ) {
			t.Fatalf("k=%d members = %v, want {Q}", k, res.Members)
		}
		if res.Radius() != 0 {
			t.Fatalf("k=%d radius = %v, want 0", k, res.Radius())
		}
	}
	// k = 2: q plus its nearest neighbor (an edge is a 2-clique).
	res, err := s.ExactPlus(vQ, 2, 0.1)
	if err != nil {
		t.Fatalf("k=2: %v", err)
	}
	if len(res.Members) != 2 || !res.Contains(vQ) {
		t.Fatalf("k=2 members = %v, want q plus nearest neighbor", res.Members)
	}
}

func TestKCliqueNoCommunity(t *testing.T) {
	// I is pendant: it is in no triangle, so no 3-clique community.
	g := figure3()
	s := NewSearcherWithStructure(g, StructureKClique)
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return s.Exact(vI, 3) },
		func() (*Result, error) { return s.AppInc(vI, 3) },
		func() (*Result, error) { return s.AppFast(vI, 3, 0.5) },
		func() (*Result, error) { return s.AppAcc(vI, 3, 0.5) },
		func() (*Result, error) { return s.ExactPlus(vI, 3, 0.1) },
	} {
		if _, err := run(); !errors.Is(err, ErrNoCommunity) {
			t.Fatalf("pendant vertex: err = %v, want ErrNoCommunity", err)
		}
	}
}

func TestKCliqueAlgorithmsAgreeOnClusteredGraphs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := clusteredGraph(seed, 6, 6, 10)
		s := NewSearcherWithStructure(g, StructureKClique)
		q := graph.V(0)
		k := 4

		exact, err := s.ExactPlus(q, k, 0.05)
		if errors.Is(err, ErrNoCommunity) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: ExactPlus: %v", seed, err)
		}
		validateCliqueCommunity(t, g, exact, q, k)
		ropt := exact.Radius()

		inc, err := s.AppInc(q, k)
		if err != nil {
			t.Fatalf("seed %d: AppInc: %v", seed, err)
		}
		validateCliqueCommunity(t, g, inc, q, k)
		if ropt > 0 && inc.Radius()/ropt > 2+1e-9 {
			t.Fatalf("seed %d: AppInc ratio %v > 2", seed, inc.Radius()/ropt)
		}

		fast, err := s.AppFast(q, k, 0.5)
		if err != nil {
			t.Fatalf("seed %d: AppFast: %v", seed, err)
		}
		validateCliqueCommunity(t, g, fast, q, k)
		if ropt > 0 && fast.Radius()/ropt > 2.5+1e-9 {
			t.Fatalf("seed %d: AppFast ratio %v > 2.5", seed, fast.Radius()/ropt)
		}

		acc, err := s.AppAcc(q, k, 0.2)
		if err != nil {
			t.Fatalf("seed %d: AppAcc: %v", seed, err)
		}
		validateCliqueCommunity(t, g, acc, q, k)
		if ropt > 0 && acc.Radius()/ropt > 1.2+1e-9 {
			t.Fatalf("seed %d: AppAcc ratio %v > 1.2", seed, acc.Radius()/ropt)
		}
	}
}

func TestKCliqueCloneIndependent(t *testing.T) {
	g := figure3()
	s := NewSearcherWithStructure(g, StructureKClique)
	c := s.Clone()
	a, err := s.AppFast(vQ, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AppFast(vQ, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(a.Members, b.Members...) {
		t.Fatalf("clone diverged: %v vs %v", a.Members, b.Members)
	}
}
