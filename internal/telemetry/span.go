// Trace spans: a per-request tree of timed operations carried on
// context.Context. Spans are process-local and cheap (an atomic id, a
// timestamp, a slice append under a small mutex); cross-process
// correlation rides on two headers — X-Request-Id names the request,
// X-Trace-Span carries the calling span's id so the callee can record
// which parent it served. The rendered tree is what the slow-query log
// prints.
package telemetry

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying the caller's span id on
// outbound requests; servers echo their own root span id in the same
// header on responses.
const TraceHeader = "X-Trace-Span"

// spanIDs hands out process-unique span ids. Ids are small decimal
// strings, unique within a process lifetime — combined with the request
// id they identify a span globally enough for log correlation.
var spanIDs atomic.Uint64

// Span is one timed operation. Create with StartSpan, finish with End.
// All methods are nil-safe so un-traced code paths cost nothing.
type Span struct {
	Name string
	// ID is this span's process-local id.
	ID string
	// Remote is the calling span's id from the X-Trace-Span request
	// header, linking this tree to the caller's tree across processes.
	Remote string

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	parent   *Span
	children []*Span
	attrs    []string // "k=v" pairs, render-ready
}

type spanKey struct{}

// StartSpan begins a span named name. If ctx already carries a span the
// new one becomes its child; otherwise it is a root. Returns the derived
// context (carrying the new span) and the span itself. Always call End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{Name: name, ID: strconv.FormatUint(spanIDs.Add(1), 10), start: time.Now()}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		s.parent = parent
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End marks the span finished. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr attaches a key=value annotation rendered in the tree dump.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, fmt.Sprintf("%s=%v", key, value))
	s.mu.Unlock()
}

// Duration returns the span's elapsed time — end minus start when ended,
// time since start otherwise. Zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Root walks up to the tree's root span (itself if parentless).
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	for s.parent != nil {
		s = s.parent
	}
	return s
}

// Children returns a snapshot of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tree renders the span and its descendants as an indented multi-line
// dump — one line per span with id, duration and attributes — the format
// the slow-query log emits.
//
//	query span=12 1.2ms algo=exact
//	  shard-leg span=13 0.8ms shard=0
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.writeTree(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) writeTree(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, id, remote := s.Name, s.ID, s.Remote
	attrs := append([]string(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	var dur time.Duration
	if s.end.IsZero() {
		dur = time.Since(s.start)
	} else {
		dur = s.end.Sub(s.start)
	}
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s span=%s %s", name, id, dur.Round(time.Microsecond))
	if remote != "" {
		fmt.Fprintf(b, " remote=%s", remote)
	}
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a)
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.writeTree(b, depth+1)
	}
}
