// Package wal implements the write-ahead log of the durable serving store:
// append-only segment files of check-in and friendship-edge records, each
// record length-prefixed and CRC-32-protected, with segment rotation by size
// and a configurable fsync policy. The snapshot engine's writer loop appends
// one batch per publication (group commit: one fsync covers the whole
// batch), so under PolicyAlways a write that became visible to readers is
// also durable on disk.
//
// On-disk layout (all integers little-endian):
//
//	wal-<firstSeq %020d>.seg          one file per segment
//	  magic   "SACWAL01"              (8 bytes, once per segment)
//	  frame*  repeated records:
//	    length  uint32                (payload bytes)
//	    crc     uint32                (IEEE CRC-32 of the payload)
//	    payload:
//	      seq   uint64                (global, strictly consecutive)
//	      kind  uint8                 (1 = check-in, 2 = edge)
//	      check-in: v int32, x float64 bits, y float64 bits
//	      edge:     u int32, v int32, insert uint8
//
// Recovery scans segments in order, validating every frame and the seq
// chain. A damaged frame at the very tail of the last segment is a torn
// write — the crash interrupted an append — and is tolerated: the log is
// truncated to the last valid frame and appends resume there. A damaged
// frame anywhere else (an earlier segment, or followed by more data that is
// not zero padding) is bit rot that may have eaten acknowledged writes, and
// Open fails loudly rather than silently serving a hole in history.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/telemetry"
)

// Policy selects when appended records reach stable storage.
type Policy string

const (
	// PolicyAlways fsyncs once per Append call (group commit): when Append
	// returns, every record in the batch is durable.
	PolicyAlways Policy = "always"
	// PolicyInterval fsyncs from a background ticker; a crash loses at most
	// the last interval of acknowledged writes.
	PolicyInterval Policy = "interval"
	// PolicyNever issues no fsync at all; durability is whatever the OS page
	// cache survives. Process crashes lose nothing (the data is in the
	// kernel), power loss may lose everything since the last checkpoint.
	PolicyNever Policy = "never"
)

// ParsePolicy validates a policy string from a flag or config file.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyAlways, PolicyInterval, PolicyNever:
		return Policy(s), nil
	case "":
		return PolicyAlways, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindCheckin is one vertex location update.
	KindCheckin Kind = 1
	// KindEdge is one friendship-edge insertion or deletion.
	KindEdge Kind = 2
)

// Record is one logged graph mutation.
type Record struct {
	Seq  uint64 // assigned by Append; strictly consecutive across segments
	Kind Kind

	V   graph.V    // KindCheckin: the vertex
	Loc geom.Point // KindCheckin: its new location

	U, W   graph.V // KindEdge: the endpoints
	Insert bool    // KindEdge: insert (true) or delete
}

const (
	frameHeaderLen = 8 // length (4) + crc (4)
	// maxPayloadLen bounds a frame's declared payload so a corrupted length
	// field cannot trigger a huge allocation or swallow megabytes of log.
	// The largest real payload is a check-in: seq(8)+kind(1)+v(4)+x(8)+y(8).
	maxPayloadLen  = 29
	checkinPayload = 29
	edgePayload    = 18 // seq(8)+kind(1)+u(4)+v(4)+insert(1)
)

var segMagic = [8]byte{'S', 'A', 'C', 'W', 'A', 'L', '0', '1'}

const segPrefix = "wal-"
const segSuffix = ".seg"

// NumberedName renders the zero-padded `<prefix><seq %020d><suffix>` file
// name shared by WAL segments and the store's checkpoints — zero padding
// keeps lexical directory order equal to sequence order.
func NumberedName(prefix string, seq uint64, suffix string) string {
	return fmt.Sprintf("%s%020d%s", prefix, seq, suffix)
}

// ParseNumberedName inverts NumberedName, rejecting anything that is not
// exactly a 20-digit sequence between the given prefix and suffix.
func ParseNumberedName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	var seq uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

func segName(firstSeq uint64) string { return NumberedName(segPrefix, firstSeq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	return ParseNumberedName(name, segPrefix, segSuffix)
}

// Options configures a Log. The zero value uses PolicyAlways, 16 MiB
// segments and a 100 ms flush interval.
type Options struct {
	// Policy selects the fsync policy (default PolicyAlways).
	Policy Policy
	// SegmentBytes rotates to a new segment file once the active one exceeds
	// this size (default 16 MiB).
	SegmentBytes int64
	// FlushInterval paces the background fsync under PolicyInterval
	// (default 100 ms).
	FlushInterval time.Duration
	// Metrics, when non-nil, receives the log's instrumentation: an
	// fsync-latency histogram and segment/bytes/last-seq gauges read at
	// scrape time.
	Metrics *telemetry.Registry
}

func (o Options) policy() Policy {
	if o.Policy == "" {
		return PolicyAlways
	}
	return o.Policy
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 16 << 20
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval > 0 {
		return o.FlushInterval
	}
	return 100 * time.Millisecond
}

// segment is one on-disk log file.
type segment struct {
	path  string
	first uint64 // seq of the first record this segment may hold
	size  int64
}

// Log is an append-only record log over segment files in one directory.
// Append/TruncateThrough/Stats/Close are safe for concurrent use; Replay
// reads the files directly and must not race with Append (recovery runs it
// before serving starts).
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File // active segment, opened for append
	active  segment
	sealed  []segment // older segments, ascending by first seq
	lastSeq uint64
	dirty   bool  // unsynced appends (PolicyInterval / PolicyNever)
	err     error // latched I/O or fsync failure; all later appends fail

	buf []byte // append scratch, one batch's frames

	fsyncDur *telemetry.Histogram // nil-safe; observed around every fsync

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open scans dir for segments, validates them, repairs a torn tail, and
// opens the log for appending. startSeq seeds the sequence numbering when
// the directory holds no segments (the newest checkpoint's sequence, so the
// chain continues across truncations); with existing segments the recovered
// last sequence wins and startSeq only bounds it from below.
func Open(dir string, startSeq uint64, opt Options) (*Log, error) {
	if _, err := ParsePolicy(string(opt.policy())); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, lastSeq: startSeq}
	segLast := uint64(0) // newest seq found across segments
	for i := range segs {
		isLast := i == len(segs)-1
		last, validSize, err := scanSegment(segs[i].path, segs[i].first, isLast)
		if err != nil {
			return nil, err
		}
		if last > 0 {
			if last < segLast {
				// A segment ending before its predecessor would mean the
				// files were shuffled; listSegments ordering makes this a
				// directory-level inconsistency.
				return nil, fmt.Errorf("wal: segment %s ends at seq %d, before %d", segs[i].path, last, segLast)
			}
			segLast = last
		}
		segs[i].size = validSize
		if isLast {
			// Repair the torn tail so new frames land after the last valid
			// one instead of interleaving with garbage.
			if fi, err := os.Stat(segs[i].path); err == nil && fi.Size() > validSize {
				if err := os.Truncate(segs[i].path, validSize); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", segs[i].path, err)
				}
			}
		}
	}
	// The chain never moves backwards past startSeq: a log whose tail
	// records were lost (power loss under a lax fsync policy zeroing the
	// active segment) may scan to a seq below the checkpoint that seeded
	// startSeq — the checkpoint already contains those records' effects, so
	// the right resume point is still startSeq. Regressing would hand out
	// already-covered sequence numbers to new writes, and the next recovery
	// would silently skip them as "before the checkpoint".
	resumePastLoss := len(segs) > 0 && segLast < l.lastSeq
	if segLast > l.lastSeq {
		l.lastSeq = segLast
	}
	if len(segs) == 0 {
		if err := l.createSegment(l.lastSeq + 1); err != nil {
			return nil, err
		}
	} else {
		l.active = segs[len(segs)-1]
		l.sealed = segs[:len(segs)-1]
		f, err := os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening active segment: %w", err)
		}
		l.f = f
		if resumePastLoss {
			// The surviving segments end before the resume point, so the
			// next record (lastSeq+1) cannot extend their seq chain — seal
			// them and start a fresh segment named at the resume point.
			if err := l.createSegment(l.lastSeq + 1); err != nil {
				return nil, err
			}
		}
	}
	if l.opt.policy() == PolicyInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	if reg := opt.Metrics; reg != nil {
		l.fsyncDur = reg.Histogram("sac_wal_fsync_duration_seconds",
			"WAL fsync latency (one group commit under PolicyAlways).", nil)
		reg.GaugeFunc("sac_wal_segments", "WAL segment files on disk.", func() float64 {
			n, _ := l.Stats()
			return float64(n)
		})
		reg.GaugeFunc("sac_wal_bytes", "WAL bytes on disk across all segments.", func() float64 {
			_, b := l.Stats()
			return float64(b)
		})
		reg.GaugeFunc("sac_wal_last_seq", "Sequence of the newest appended WAL record.", func() float64 {
			return float64(l.LastSeq())
		})
	}
	return l, nil
}

// listSegments returns dir's segment files ascending by first seq.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// createSegment seals the active segment (if any) and starts a new one whose
// name records the first sequence it will hold.
func (l *Log) createSegment(firstSeq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing sealed segment: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing sealed segment: %w", err)
		}
		l.sealed = append(l.sealed, l.active)
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment magic: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.active = segment{path: path, first: firstSeq, size: int64(len(segMagic))}
	return nil
}

// Append assigns consecutive sequence numbers to recs (filling in their Seq
// fields), writes them as one contiguous byte run and applies the fsync
// policy once — the group commit. It returns the last assigned sequence.
// After any I/O or fsync failure the log is poisoned: the failed batch and
// every later Append return the error, so a caller can never treat a
// non-durable write as committed.
func (l *Log) Append(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.lastSeq, l.err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.lastSeq, l.err
	}
	l.buf = l.buf[:0]
	for i := range recs {
		l.lastSeq++
		recs[i].Seq = l.lastSeq
		l.buf = appendFrame(l.buf, &recs[i])
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.lastSeq, l.err
	}
	l.active.size += int64(len(l.buf))
	switch l.opt.policy() {
	case PolicyAlways:
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
			return l.lastSeq, l.err
		}
		l.fsyncDur.Observe(time.Since(start).Seconds())
	default:
		l.dirty = true
	}
	if l.active.size >= l.opt.segmentBytes() {
		if err := l.createSegment(l.lastSeq + 1); err != nil {
			l.err = err
			return l.lastSeq, l.err
		}
	}
	return l.lastSeq, nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return l.err
	}
	l.fsyncDur.Observe(time.Since(start).Seconds())
	l.dirty = false
	return nil
}

// flusher is the PolicyInterval background fsync loop.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.flushInterval())
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.err == nil {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// LastSeq returns the sequence of the newest appended (or recovered) record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats reports the segment count and total on-disk bytes.
func (l *Log) Stats() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sealed {
		bytes += s.size
	}
	return len(l.sealed) + 1, bytes + l.active.size
}

// Policy returns the effective fsync policy.
func (l *Log) Policy() Policy { return l.opt.policy() }

// TruncateThrough removes sealed segments whose records are all ≤ seq —
// they are fully covered by a checkpoint. The active segment is never
// removed; records ≤ seq inside retained segments are skipped on replay.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.sealed[:0]
	removed := false
	for i, s := range l.sealed {
		// Segment i's records end right before the next segment's first seq.
		next := l.active.first
		if i+1 < len(l.sealed) {
			next = l.sealed[i+1].first
		}
		if next-1 <= seq {
			if err := os.Remove(s.path); err != nil {
				l.sealed = append(kept, l.sealed[i:]...)
				return fmt.Errorf("wal: removing covered segment: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if removed {
		return SyncDir(l.dir)
	}
	return nil
}

// Close flushes and closes the active segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
		l.stopFlush = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	syncErr := l.syncLocked()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Replay streams every valid record with Seq > afterSeq, in order, to fn.
// It verifies the chain is gap-free: when the log holds records newer than
// afterSeq, the first one replayed must be afterSeq+1 — anything else means
// a needed segment was lost, and recovery must fail rather than skip
// history. Stops early if fn returns an error.
func Replay(dir string, afterSeq uint64, fn func(Record) error) (replayed int, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	expect := uint64(0) // next seq the chain must produce; 0 = not yet anchored
	for i, s := range segs {
		isLast := i == len(segs)-1
		_, err := scanRecords(s.path, s.first, isLast, func(r Record) error {
			if expect == 0 {
				expect = r.Seq
			} else if r.Seq != expect {
				return fmt.Errorf("wal: sequence gap in %s: got %d, want %d", s.path, r.Seq, expect)
			}
			expect = r.Seq + 1
			if r.Seq <= afterSeq {
				return nil
			}
			if replayed == 0 && r.Seq != afterSeq+1 {
				return fmt.Errorf("wal: history gap: replay needs seq %d, log starts at %d", afterSeq+1, r.Seq)
			}
			replayed++
			return fn(r)
		})
		if err != nil {
			return replayed, err
		}
	}
	return replayed, nil
}

// scanSegment validates a whole segment in one pass, returning its last
// record's seq (0 when empty) and the byte length of the valid prefix.
func scanSegment(path string, firstSeq uint64, isLast bool) (lastSeq uint64, validSize int64, err error) {
	validSize, err = scanRecords(path, firstSeq, isLast, func(r Record) error {
		lastSeq = r.Seq
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return lastSeq, validSize, nil
}

// nextFrame parses one frame at off, returning the offset past it. ok=false
// on any framing failure (short data, bad length, CRC mismatch).
func nextFrame(data []byte, off int64) (next int64, rec Record, ok bool) {
	if off+frameHeaderLen > int64(len(data)) {
		return off, rec, false
	}
	length := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if length == 0 || length > maxPayloadLen {
		return off, rec, false
	}
	end := off + frameHeaderLen + int64(length)
	if end > int64(len(data)) {
		return off, rec, false
	}
	payload := data[off+frameHeaderLen : end]
	if crc32.ChecksumIEEE(payload) != crc {
		return off, rec, false
	}
	r, err := decodePayload(payload)
	if err != nil {
		return off, rec, false
	}
	return end, r, true
}

// scanRecords walks one segment file frame by frame, returning the byte
// offset past the last valid frame. A framing failure at the tail of the
// last segment is tolerated (torn write); one followed by more non-zero
// data, or in a sealed segment, is corruption and errors.
func scanRecords(path string, firstSeq uint64, isLast bool, fn func(Record) error) (validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	if int64(len(data)) < int64(len(segMagic)) || [8]byte(data[:8]) != segMagic {
		return 0, fmt.Errorf("wal: %s: bad segment magic", path)
	}
	off := int64(len(segMagic))
	expect := firstSeq
	for off < int64(len(data)) {
		next, rec, ok := nextFrame(data, off)
		if !ok {
			if !isLast {
				return off, fmt.Errorf("wal: corrupt record in sealed segment %s at byte %d", path, off)
			}
			// A torn final append occupies less than one max-size frame; a
			// larger damaged region, unless it is all zero padding, means
			// valid history was overwritten — refuse to guess.
			rest := data[off:]
			if int64(len(rest)) > frameHeaderLen+maxPayloadLen && !allZero(rest) {
				return off, fmt.Errorf("wal: corrupt record mid-segment %s at byte %d (%d bytes follow)", path, off, len(rest))
			}
			return off, nil
		}
		if rec.Seq != expect {
			return off, fmt.Errorf("wal: %s: record seq %d, want %d", path, rec.Seq, expect)
		}
		expect++
		if err := fn(rec); err != nil {
			return off, err
		}
		off = next
	}
	return off, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// EncodeFrame appends one record's wire frame — length, CRC-32, payload,
// exactly the bytes a segment file stores — to buf. The replication shipper
// reuses it so followers ingest the same CRC-framed, gap-checked format
// recovery validates.
func EncodeFrame(buf []byte, r *Record) []byte { return appendFrame(buf, r) }

// DecodeFrame parses one frame at the start of data, returning the bytes
// consumed. ok=false on short data, a bad length field, a CRC mismatch or an
// undecodable payload — the caller decides whether that is a torn tail to
// wait out or corruption to reject.
func DecodeFrame(data []byte) (n int, r Record, ok bool) {
	next, rec, ok := nextFrame(data, 0)
	if !ok {
		return 0, rec, false
	}
	return int(next), rec, true
}

// appendFrame encodes one record (Seq already assigned) onto buf.
func appendFrame(buf []byte, r *Record) []byte {
	var payload [maxPayloadLen]byte
	binary.LittleEndian.PutUint64(payload[0:], r.Seq)
	payload[8] = byte(r.Kind)
	var n int
	switch r.Kind {
	case KindCheckin:
		binary.LittleEndian.PutUint32(payload[9:], uint32(r.V))
		binary.LittleEndian.PutUint64(payload[13:], math.Float64bits(r.Loc.X))
		binary.LittleEndian.PutUint64(payload[21:], math.Float64bits(r.Loc.Y))
		n = checkinPayload
	case KindEdge:
		binary.LittleEndian.PutUint32(payload[9:], uint32(r.U))
		binary.LittleEndian.PutUint32(payload[13:], uint32(r.W))
		if r.Insert {
			payload[17] = 1
		}
		n = edgePayload
	default:
		panic(fmt.Sprintf("wal: unknown record kind %d", r.Kind))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload[:n]))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:n]...)
}

// decodePayload parses a CRC-validated payload.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 9 {
		return r, io.ErrUnexpectedEOF
	}
	r.Seq = binary.LittleEndian.Uint64(p[0:])
	r.Kind = Kind(p[8])
	switch r.Kind {
	case KindCheckin:
		if len(p) != checkinPayload {
			return r, fmt.Errorf("wal: check-in payload is %d bytes, want %d", len(p), checkinPayload)
		}
		r.V = graph.V(binary.LittleEndian.Uint32(p[9:]))
		r.Loc.X = math.Float64frombits(binary.LittleEndian.Uint64(p[13:]))
		r.Loc.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[21:]))
	case KindEdge:
		if len(p) != edgePayload {
			return r, fmt.Errorf("wal: edge payload is %d bytes, want %d", len(p), edgePayload)
		}
		r.U = graph.V(binary.LittleEndian.Uint32(p[9:]))
		r.W = graph.V(binary.LittleEndian.Uint32(p[13:]))
		r.Insert = p[17] == 1
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}

// syncDir fsyncs a directory so segment creation, removal and checkpoint
// renames survive power loss, not just process death.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}
