package graph

import (
	"testing"

	"sacsearch/internal/geom"
)

func freezeTestGraph() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	for v := V(0); v < 4; v++ {
		b.SetLoc(v, geom.Point{X: float64(v) * 0.1, Y: 0.5})
	}
	return b.Build()
}

// TestFreeze pins the frozen-view contract snapshot publication relies on:
// reads keep working, every mutator panics, and Clone yields a mutable copy
// that diverges without touching the frozen original.
func TestFreeze(t *testing.T) {
	g := freezeTestGraph()
	if g.Frozen() {
		t.Fatal("fresh graph frozen")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	// Reads are unaffected.
	if g.NumEdges() != 4 || g.Degree(2) != 3 || !g.HasEdge(0, 1) {
		t.Fatalf("frozen reads broken: edges=%d deg2=%d", g.NumEdges(), g.Degree(2))
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a frozen graph did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetLoc", func() { g.SetLoc(0, geom.Point{X: 0.9, Y: 0.9}) })
	mustPanic("AddEdge", func() { g.AddEdge(0, 3) })
	mustPanic("RemoveEdge", func() { g.RemoveEdge(0, 1) })
	mustPanic("Compact", func() { g.Compact() })

	// Clone is mutable and diverges alone.
	c := g.Clone()
	if c.Frozen() {
		t.Fatal("clone of a frozen graph is frozen")
	}
	if !c.AddEdge(0, 3) {
		t.Fatal("clone AddEdge failed")
	}
	c.SetLoc(1, geom.Point{X: 0.9, Y: 0.9})
	if g.HasEdge(0, 3) {
		t.Fatal("frozen original saw the clone's edge")
	}
	if g.Loc(1).X == 0.9 {
		t.Fatal("frozen original saw the clone's location")
	}
}
