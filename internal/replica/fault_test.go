package replica

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/store"
)

// TestReplicationFaultInjectionDifferential is the acceptance suite: a
// proxy injects arbitrary stream faults — abrupt mid-frame truncations,
// single-bit flips, added latency — between a churning leader and a
// follower, and after every round of damage the follower's answers for ALL
// registered algorithms must be byte-identical to a fresh searcher over the
// leader's reference prefix. Faults may delay replication; they may never
// corrupt it. The suite ends by fencing the leader and proving its writes
// are rejected. Run under -race in CI.
func TestReplicationFaultInjectionDifferential(t *testing.T) {
	// Small segments + event-triggered checkpoints: WAL truncation races
	// the shipper's cursors, so snapshot fallback is exercised too.
	st, sh := startLeader(t, store.Options{
		SegmentBytes:       1 << 10,
		CheckpointEvents:   64,
		CheckpointInterval: -1,
	})

	// Deterministic fault script, cycling through the failure modes. Every
	// 4th session is clean so convergence is always reachable; the rest cut
	// mid-frame at awkward offsets, flip a bit (caught by message or frame
	// CRCs), or add latency.
	rnd := rand.New(rand.NewSource(1729))
	proxy, err := NewProxy(sh.Addr().String(), func(i int) Fault {
		switch i % 4 {
		case 0:
			return Fault{CutAt: 2200 + int64(rnd.Intn(6000))}
		case 1:
			return Fault{FlipBitAt: 2100 + int64(rnd.Intn(4000)), DropConnAfter: 300 * time.Millisecond}
		case 2:
			return Fault{Delay: time.Millisecond, CutAt: 3000 + int64(rnd.Intn(8000))}
		default:
			return Fault{} // every 4th session clean, so convergence is reachable
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	f := startFollower(t, proxy.Addr())
	waitFor(t, 10*time.Second, "initial sync through the proxy", func() bool { return f.Status().Synced })

	var events []churnEvent
	for round := 0; round < 6; round++ {
		events = append(events, driveChurn(t, st, int64(5000+round), 80)...)
		waitFor(t, 20*time.Second, "catch-up through injected faults", caughtUp(st, f))
		diffCheckFollower(t, "fault round", f, refGraph(t, events, len(events)))
	}

	s := f.Status()
	if proxy.Sessions() < 3 || s.Reconnects < 2 {
		t.Fatalf("faults were not exercised: %d proxy sessions, %d reconnects",
			proxy.Sessions(), s.Reconnects)
	}
	if s.AppliedSeq != st.WalLastSeq() {
		t.Fatalf("applied %d, leader at %d", s.AppliedSeq, st.WalLastSeq())
	}

	// Node-loss epilogue: a new leader exists; the deposed one must reject
	// writes while the follower keeps serving the replicated state.
	newEpoch := st.Epoch() + 1
	if _, err := FenceLeader(sh.Addr().String(), newEpoch, 5*time.Second); err != nil {
		t.Fatalf("FenceLeader: %v", err)
	}
	if err := st.CheckIn(context.Background(), 3, geom.Point{X: 0.123, Y: 0.456}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("fenced ex-leader accepted a write: %v", err)
	}
	diffCheckFollower(t, "post-fence reads", f, refGraph(t, events, len(events)))
}

// TestBitFlipNeverReachesState pins the CRC defense specifically: a
// single flipped bit in the record stream must terminate the session —
// state diverging silently is the one forbidden outcome.
func TestBitFlipNeverReachesState(t *testing.T) {
	st, sh := startLeader(t, store.Options{})

	// Flip a bit early in every session's record stream (past the ~2 KB
	// snapshot) and never sever otherwise: each session either dies on CRC
	// mismatch or survives because the flip landed on already-read bytes.
	proxy, err := NewProxy(sh.Addr().String(), func(i int) Fault {
		if i%2 == 0 {
			return Fault{FlipBitAt: 2100 + int64(i)*37}
		}
		return Fault{} // let it converge on alternate sessions
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	f := startFollower(t, proxy.Addr())
	waitFor(t, 10*time.Second, "initial sync", func() bool { return f.Status().Synced })

	var events []churnEvent
	for round := 0; round < 3; round++ {
		events = append(events, driveChurn(t, st, int64(9000+round), 100)...)
		waitFor(t, 20*time.Second, "catch-up past bit flips", caughtUp(st, f))
		diffCheckFollower(t, "bit-flip round", f, refGraph(t, events, len(events)))
	}
}
