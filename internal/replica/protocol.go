// Package replica implements WAL-shipping replication: a leader-side
// Shipper that streams the write-ahead log (sealed segments and the live
// tail, in the same CRC-framed, gap-checked record format recovery
// validates) to follower processes, and a Follower that replays the stream
// onto its own snapshot engine and serves read-only traffic.
//
// Wire protocol (all integers little-endian), one TCP connection per
// follower session:
//
//	handshake  follower → leader, 32 bytes:
//	  magic        "SACREP01"
//	  afterSeq     uint64   last WAL seq the follower has applied
//	  appliedEpoch uint64   leader epoch those records were applied under
//	  maxEpochSeen uint64   highest leader epoch the follower has ever seen
//	response   leader → follower, 29 bytes:
//	  magic        "SACREP01"
//	  status       uint8    1 = tail, 2 = snapshot, 3 = rejected
//	  epoch        uint64   the leader's current epoch
//	  startSeq     uint64   seq the stream resumes after
//	  heartbeat    uint32   leader's heartbeat interval, milliseconds
//	snapshot   (status 2 only): uint64 byte length, then exactly that many
//	  bytes of graph.WriteBinary output — the leader state as of startSeq.
//	  Length-prefixed because ReadBinary buffers reads and must not swallow
//	  stream bytes that follow.
//	stream     leader → follower, repeated messages:
//	  type u8 | len u32 | crc u32 (IEEE, of payload) | payload
//	  type 1 = records:   concatenated wal frames, consecutive seqs
//	  type 2 = heartbeat: leaderLastSeq uint64, unixNano int64, epoch uint64
//	acks       follower → leader, same framing on the same connection:
//	  type 3 = ack:       appliedSeq uint64 — sent once the session is
//	  established and after every applied record batch, so the leader's
//	  /v1/health can report per-follower acknowledged progress.
//
// Sequence numbers alias across epochs (a promoted leader's log restarts
// its own numbering), so tail resume is only offered when the follower's
// appliedEpoch equals the leader's current epoch; anything else — and any
// WAL truncation past the follower's position — falls back to a snapshot.
//
// Fencing rides the same plane in both directions: a handshake whose
// maxEpochSeen exceeds the leader's epoch fences the leader (its store
// rejects all further writes with store.ErrFenced) and the connection is
// rejected; a follower refuses any leader whose epoch is below its own
// maxEpochSeen, so a deposed leader cannot feed it forked history.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var wireMagic = [8]byte{'S', 'A', 'C', 'R', 'E', 'P', '0', '1'}

// Response statuses.
const (
	statusTail     = 1 // stream continues right after handshake.afterSeq
	statusSnapshot = 2 // full state transfer, then stream from its seq
	statusRejected = 3 // leader refuses (fenced, or outranked by the follower)
)

// Stream message types.
const (
	msgRecords   = 1
	msgHeartbeat = 2
	msgAck       = 3 // follower → leader
)

// maxMessageLen bounds one stream message so a corrupted length field
// cannot trigger a huge allocation on either side.
const maxMessageLen = 1 << 20

type handshake struct {
	AfterSeq     uint64
	AppliedEpoch uint64
	MaxEpochSeen uint64
}

type response struct {
	Status          uint8
	Epoch           uint64
	StartSeq        uint64
	HeartbeatMillis uint32
}

type heartbeat struct {
	LastSeq  uint64
	UnixNano int64
	Epoch    uint64
}

func writeHandshake(w io.Writer, h handshake) error {
	var buf [32]byte
	copy(buf[:8], wireMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], h.AfterSeq)
	binary.LittleEndian.PutUint64(buf[16:], h.AppliedEpoch)
	binary.LittleEndian.PutUint64(buf[24:], h.MaxEpochSeen)
	_, err := w.Write(buf[:])
	return err
}

func readHandshake(r io.Reader) (handshake, error) {
	var buf [32]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return handshake{}, err
	}
	if [8]byte(buf[:8]) != wireMagic {
		return handshake{}, errors.New("replica: bad handshake magic")
	}
	return handshake{
		AfterSeq:     binary.LittleEndian.Uint64(buf[8:]),
		AppliedEpoch: binary.LittleEndian.Uint64(buf[16:]),
		MaxEpochSeen: binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

func writeResponse(w io.Writer, r response) error {
	var buf [29]byte
	copy(buf[:8], wireMagic[:])
	buf[8] = r.Status
	binary.LittleEndian.PutUint64(buf[9:], r.Epoch)
	binary.LittleEndian.PutUint64(buf[17:], r.StartSeq)
	binary.LittleEndian.PutUint32(buf[25:], r.HeartbeatMillis)
	_, err := w.Write(buf[:])
	return err
}

func readResponse(r io.Reader) (response, error) {
	var buf [29]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return response{}, err
	}
	if [8]byte(buf[:8]) != wireMagic {
		return response{}, errors.New("replica: bad response magic")
	}
	resp := response{
		Status:          buf[8],
		Epoch:           binary.LittleEndian.Uint64(buf[9:]),
		StartSeq:        binary.LittleEndian.Uint64(buf[17:]),
		HeartbeatMillis: binary.LittleEndian.Uint32(buf[25:]),
	}
	switch resp.Status {
	case statusTail, statusSnapshot, statusRejected:
		return resp, nil
	}
	return response{}, fmt.Errorf("replica: unknown response status %d", resp.Status)
}

// writeMessage frames one stream message: type, length, payload CRC,
// payload. The CRC guards the framing — individual records inside a
// msgRecords payload additionally carry their own per-frame CRCs.
func writeMessage(w io.Writer, typ uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMessage reads one framed stream message into buf (grown as needed),
// validating the length bound and payload CRC. Any framing failure is fatal
// to the connection: the follower resumes from its last applied seq on a
// fresh one, so corruption can delay replication but never alter it.
func readMessage(r io.Reader, buf []byte) (typ uint8, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, buf, err
	}
	typ = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	crc := binary.LittleEndian.Uint32(hdr[5:])
	if n > maxMessageLen {
		return 0, buf, fmt.Errorf("replica: message of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, payload, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, payload, errors.New("replica: message CRC mismatch")
	}
	return typ, payload, nil
}

func encodeAck(buf []byte, appliedSeq uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], appliedSeq)
	return append(buf[:0], b[:]...)
}

func decodeAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("replica: ack payload is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

func encodeHeartbeat(buf []byte, hb heartbeat) []byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], hb.LastSeq)
	binary.LittleEndian.PutUint64(b[8:], uint64(hb.UnixNano))
	binary.LittleEndian.PutUint64(b[16:], hb.Epoch)
	return append(buf[:0], b[:]...)
}

func decodeHeartbeat(p []byte) (heartbeat, error) {
	if len(p) != 24 {
		return heartbeat{}, fmt.Errorf("replica: heartbeat payload is %d bytes, want 24", len(p))
	}
	return heartbeat{
		LastSeq:  binary.LittleEndian.Uint64(p[0:]),
		UnixNano: int64(binary.LittleEndian.Uint64(p[8:])),
		Epoch:    binary.LittleEndian.Uint64(p[16:]),
	}, nil
}
