// Package spatial implements a uniform-grid point index over graph vertex
// locations. SAC search repeatedly gathers "all vertices inside circle
// O(c, r)" (AppFast line 6, AppAcc line 9, θ-SAC); the grid answers those
// circle range queries and k-nearest-neighbor queries in time proportional
// to the number of touched cells instead of the whole vertex set.
//
// The index snapshots locations at construction; rebuild after bulk location
// updates (the dynamic-replay experiment does).
package spatial

import (
	"math"
	"sort"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Grid is a uniform bucket grid over a set of points.
type Grid struct {
	minX, minY float64
	cell       float64 // cell edge length
	cols, rows int
	buckets    [][]graph.V
	pts        []geom.Point // snapshot of locations
}

// NewGrid indexes the given points aiming for roughly targetPerCell points
// per cell. targetPerCell <= 0 defaults to 4.
func NewGrid(pts []geom.Point, targetPerCell int) *Grid {
	if targetPerCell <= 0 {
		targetPerCell = 4
	}
	n := len(pts)
	g := &Grid{pts: append([]geom.Point(nil), pts...)}
	if n == 0 {
		g.cell = 1
		g.cols, g.rows = 1, 1
		g.buckets = make([][]graph.V, 1)
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	cells := float64(n) / float64(targetPerCell)
	if cells < 1 {
		cells = 1
	}
	// Square-ish cells: pick the edge so cols*rows ≈ cells.
	g.cell = math.Sqrt(w * h / cells)
	if g.cell <= 0 || math.IsNaN(g.cell) {
		g.cell = math.Max(w, h)
	}
	g.cols = int(w/g.cell) + 1
	g.rows = int(h/g.cell) + 1
	g.buckets = make([][]graph.V, g.cols*g.rows)
	for i, p := range pts {
		g.buckets[g.cellOf(p)] = append(g.buckets[g.cellOf(p)], graph.V(i))
	}
	return g
}

// NewGridForGraph indexes the current locations of g's vertices.
func NewGridForGraph(gr *graph.Graph, targetPerCell int) *Grid {
	return NewGrid(gr.Locs(), targetPerCell)
}

func (g *Grid) cellOf(p geom.Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NumPoints returns the number of indexed points.
func (g *Grid) NumPoints() int { return len(g.pts) }

// Dims returns the grid dimensions (columns, rows).
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// CellIndex returns the row-major cell index p falls into (clamped to the
// grid, like every internal lookup).
func (g *Grid) CellIndex(p geom.Point) int { return g.cellOf(p) }

// Bucket returns the point ids indexed in the row-major cell idx. The slice
// is the grid's own storage — callers must not mutate it.
func (g *Grid) Bucket(idx int) []graph.V {
	if idx < 0 || idx >= len(g.buckets) {
		return nil
	}
	return g.buckets[idx]
}

// InCircle appends to dst every indexed point id inside the closed disk c
// (with geom.Eps tolerance) and returns dst.
func (g *Grid) InCircle(c geom.Circle, dst []graph.V) []graph.V {
	if c.R < 0 {
		return dst
	}
	loX := clampInt(int((c.C.X-c.R-g.minX)/g.cell), 0, g.cols-1)
	hiX := clampInt(int((c.C.X+c.R-g.minX)/g.cell), 0, g.cols-1)
	loY := clampInt(int((c.C.Y-c.R-g.minY)/g.cell), 0, g.rows-1)
	hiY := clampInt(int((c.C.Y+c.R-g.minY)/g.cell), 0, g.rows-1)
	r2 := (c.R + geom.Eps) * (c.R + geom.Eps)
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			for _, id := range g.buckets[cy*g.cols+cx] {
				if g.pts[id].Dist2(c.C) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// InAnnulus appends point ids with rInner <= dist(p, center) <= rOuter.
func (g *Grid) InAnnulus(center geom.Point, rInner, rOuter float64, dst []graph.V) []graph.V {
	tmp := g.InCircle(geom.Circle{C: center, R: rOuter}, nil)
	// See SubGrid.InAnnulus: an inner bound within tolerance of zero must
	// not be squared into a positive cutoff.
	in2 := -1.0
	if rInner > geom.Eps {
		in2 = (rInner - geom.Eps) * (rInner - geom.Eps)
	}
	for _, id := range tmp {
		if g.pts[id].Dist2(center) >= in2 {
			dst = append(dst, id)
		}
	}
	return dst
}

// KNearest returns the ids of the k indexed points nearest to p for which
// accept returns true (accept == nil accepts everything), ordered by
// increasing distance. Fewer than k are returned when the index runs out of
// acceptable points. The search expands ring-by-ring over grid cells.
func (g *Grid) KNearest(p geom.Point, k int, accept func(graph.V) bool) []graph.V {
	if k <= 0 || len(g.pts) == 0 {
		return nil
	}
	type cand struct {
		id graph.V
		d2 float64
	}
	var cands []cand
	cx := clampInt(int((p.X-g.minX)/g.cell), 0, g.cols-1)
	cy := clampInt(int((p.Y-g.minY)/g.cell), 0, g.rows-1)
	maxRing := g.cols + g.rows
	for ring := 0; ring <= maxRing; ring++ {
		added := false
		scan := func(x, y int) {
			if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
				return
			}
			for _, id := range g.buckets[y*g.cols+x] {
				if accept != nil && !accept(id) {
					continue
				}
				cands = append(cands, cand{id, g.pts[id].Dist2(p)})
				added = true
			}
		}
		if ring == 0 {
			scan(cx, cy)
		} else {
			for x := cx - ring; x <= cx+ring; x++ {
				scan(x, cy-ring)
				scan(x, cy+ring)
			}
			for y := cy - ring + 1; y <= cy+ring-1; y++ {
				scan(cx-ring, y)
				scan(cx+ring, y)
			}
		}
		_ = added
		// Stop once we have k candidates whose distances are certainly not
		// beaten by points in farther rings: the nearest possible point in
		// ring r+1 is at least (r)*cell away from p's cell boundary.
		if len(cands) >= k {
			sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
			safe := float64(ring) * g.cell // lower bound to next ring
			if math.Sqrt(cands[k-1].d2) <= safe || ring == maxRing {
				out := make([]graph.V, k)
				for i := 0; i < k; i++ {
					out[i] = cands[i].id
				}
				return out
			}
		}
	}
	// Exhausted all rings with fewer than k acceptable points.
	sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
	out := make([]graph.V, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.id)
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}
