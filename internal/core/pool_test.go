package core

import (
	"sync"
	"testing"

	"sacsearch/internal/graph"
)

// TestPoolMatchesSequential runs the same query stream through concurrent
// Pool workers and through one sequential Searcher and requires identical
// Members and MCC for every query. Run under -race this also exercises the
// no-shared-mutable-state property of pooled clones.
func TestPoolMatchesSequential(t *testing.T) {
	g := clusteredGraph(13, 8, 9, 60)
	base := NewSearcher(g)
	pool := NewPool(base)

	type query struct {
		q graph.V
		k int
	}
	var stream []query
	for v := 0; v < g.NumVertices(); v += 3 {
		for _, k := range []int{2, 3, 4} {
			stream = append(stream, query{graph.V(v), k})
		}
	}
	// Repeat the stream so pooled workers see warm-cache queries too.
	stream = append(stream, stream...)

	seq := NewSearcher(g)
	want := make([]*Result, len(stream))
	wantErr := make([]error, len(stream))
	for i, qu := range stream {
		want[i], wantErr[i] = seq.AppFast(qu.q, qu.k, 0.5)
	}

	got := make([]*Result, len(stream))
	gotErr := make([]error, len(stream))
	var wg sync.WaitGroup
	const workers = 8
	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := pool.Get()
			defer pool.Put(ws)
			for i := range feed {
				got[i], gotErr[i] = ws.AppFast(stream[i].q, stream[i].k, 0.5)
			}
		}()
	}
	for i := range stream {
		feed <- i
	}
	close(feed)
	wg.Wait()

	for i := range stream {
		if (wantErr[i] == nil) != (gotErr[i] == nil) {
			t.Fatalf("query %d: err mismatch: seq %v, pool %v", i, wantErr[i], gotErr[i])
		}
		if wantErr[i] != nil {
			continue
		}
		if len(want[i].Members) != len(got[i].Members) {
			t.Fatalf("query %d: member count %d vs %d", i, len(want[i].Members), len(got[i].Members))
		}
		for j := range want[i].Members {
			if want[i].Members[j] != got[i].Members[j] {
				t.Fatalf("query %d: members differ: %v vs %v", i, want[i].Members, got[i].Members)
			}
		}
		if want[i].MCC != got[i].MCC {
			t.Fatalf("query %d: MCC differs: %+v vs %+v", i, want[i].MCC, got[i].MCC)
		}
	}
}

// TestPoolDo exercises the convenience wrapper and clone recycling.
func TestPoolDo(t *testing.T) {
	g := figure3()
	pool := NewPool(NewSearcher(g))
	if pool.Base() == nil {
		t.Fatal("Base is nil")
	}
	var members []graph.V
	err := pool.Do(func(s *Searcher) error {
		res, err := s.Exact(vQ, 2)
		if err != nil {
			return err
		}
		members = append(members[:0], res.Members...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(members, vQ, vC, vD) {
		t.Fatalf("Pool.Do result = %v", members)
	}
	// Workers warm their caches while checked out; whether a particular
	// Get returns a recycled or fresh clone is up to sync.Pool (race mode
	// deliberately randomizes retention), so only the warm-while-held
	// property is asserted.
	w := pool.Get()
	if _, err := w.AppFast(vQ, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if w.CachedCommunities() == 0 {
		t.Fatal("worker did not warm its cache")
	}
	pool.Put(w)
	w2 := pool.Get()
	defer pool.Put(w2)
	if _, err := w2.AppFast(vQ, 2, 0.5); err != nil {
		t.Fatal(err)
	}
}
