package metrics

import (
	"math"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

func square(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	b.SetLoc(0, geom.Point{X: 0, Y: 0})
	b.SetLoc(1, geom.Point{X: 1, Y: 0})
	b.SetLoc(2, geom.Point{X: 1, Y: 1})
	b.SetLoc(3, geom.Point{X: 0, Y: 1})
	return b.Build()
}

func TestRadius(t *testing.T) {
	g := square(t)
	// Unit square MCC radius = √2/2.
	if r := Radius(g, []graph.V{0, 1, 2, 3}); math.Abs(r-math.Sqrt2/2) > 1e-9 {
		t.Fatalf("radius = %v", r)
	}
	if r := Radius(g, []graph.V{0}); r != 0 {
		t.Fatalf("single radius = %v", r)
	}
}

func TestDistPrExact(t *testing.T) {
	g := square(t)
	// Pairs: 4 sides (1) + 2 diagonals (√2): avg = (4 + 2√2)/6.
	want := (4 + 2*math.Sqrt2) / 6
	if got := DistPr(g, []graph.V{0, 1, 2, 3}, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("distPr = %v, want %v", got, want)
	}
	if got := DistPr(g, []graph.V{0}, 1); got != 0 {
		t.Fatalf("single distPr = %v", got)
	}
	if got := DistPr(g, nil, 1); got != 0 {
		t.Fatalf("empty distPr = %v", got)
	}
}

func TestDistPrSampled(t *testing.T) {
	// Many co-located points plus structure: sampled mean must approximate
	// the exact mean. Build 1000 points alternating between two locations
	// 1 apart: exact avg distance ≈ 0.5.
	n := 1000
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.SetLoc(graph.V(i), geom.Point{X: 0, Y: 0})
		} else {
			b.SetLoc(graph.V(i), geom.Point{X: 1, Y: 0})
		}
	}
	g := b.Build()
	members := make([]graph.V, n)
	for i := range members {
		members[i] = graph.V(i)
	}
	got := DistPr(g, members, 42)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("sampled distPr = %v, want ≈0.5", got)
	}
	// Deterministic in seed.
	if got2 := DistPr(g, members, 42); got2 != got {
		t.Fatal("sampling not deterministic")
	}
}

func TestCJS(t *testing.T) {
	cases := []struct {
		a, b []graph.V
		want float64
	}{
		{[]graph.V{1, 2, 3}, []graph.V{1, 2, 3}, 1},
		{[]graph.V{1, 2}, []graph.V{3, 4}, 0},
		{[]graph.V{1, 2, 3}, []graph.V{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]graph.V{1}, nil, 0},
		{[]graph.V{1, 1, 2}, []graph.V{2, 2, 1}, 1}, // duplicates ignored
	}
	for _, tc := range cases {
		if got := CJS(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CJS(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got, rev := CJS(tc.a, tc.b), CJS(tc.b, tc.a); got != rev {
			t.Errorf("CJS not symmetric for %v,%v", tc.a, tc.b)
		}
	}
}

func TestCAO(t *testing.T) {
	a := geom.Circle{C: geom.Point{X: 0, Y: 0}, R: 1}
	if got := CAO(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self CAO = %v", got)
	}
	if got := CAO(a, geom.Circle{C: geom.Point{X: 5, Y: 0}, R: 1}); got != 0 {
		t.Fatalf("disjoint CAO = %v", got)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if Mean(xs) != 3 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Fatalf("median = %v", Median(xs))
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 1); got != 1 {
		t.Fatalf("p1 = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty stats should be 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Fatalf("geomean of nonpositives = %v", got)
	}
}
