package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadBinary throws hostile bytes at the binary graph decoder: whatever
// the input, ReadBinary must return a well-formed graph or an error — never
// panic, never allocate proportionally to a lying header, and anything it
// accepts must re-encode and re-decode to the same graph (the decoder's
// validation is the writer's invariant set).
func FuzzReadBinary(f *testing.F) {
	// Valid encodings of several shapes seed the corpus.
	for _, tc := range []struct{ n, edges int }{
		{0, 0},
		{1, 0},
		{2, 1},
		{30, 120},
	} {
		g := randomSpatial(int64(tc.n+1), tc.n, tc.edges)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// The corruption cases binio_test exercises: truncations, bit flips, a
	// damaged trailer, bad magic and an absurd header.
	{
		g := randomSpatial(3, 40, 150)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		for _, cut := range []int{0, 4, 8, 20, len(full) / 2, len(full) - 1} {
			f.Add(append([]byte(nil), full[:cut]...))
		}
		for _, pos := range []int{8, 24, len(full) / 3, len(full) / 2, len(full) - 2, len(full) - 1} {
			corrupt := append([]byte(nil), full...)
			corrupt[pos] ^= 0xff
			f.Add(corrupt)
		}
	}
	f.Add([]byte("NOTAGRAPHFILE...."))
	{
		// Header claims 2^63-ish vertices over an empty stream.
		var buf bytes.Buffer
		buf.Write(binMagic[:])
		buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
		buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
		f.Add(buf.Bytes())
	}
	{
		// Plausible vertex count, absurd edge count: the allocation-guard
		// case (2m would overflow the int32 offset domain).
		var buf bytes.Buffer
		buf.Write(binMagic[:])
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], 1000)
		buf.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], 1<<40)
		buf.Write(u64[:])
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the graph must satisfy the structural contract
		// well enough to serialize and round-trip bit-compatibly.
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(V(v)) {
				if u < 0 || int(u) >= n {
					t.Fatalf("accepted graph has out-of-range neighbor %d of %d", u, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph does not re-encode: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded graph does not decode: %v", err)
		}
		if g2.NumVertices() != n || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip drifted: (%d,%d) -> (%d,%d)",
				n, g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}
