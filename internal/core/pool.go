package core

import (
	"sync"
	"sync/atomic"
)

// Pool is a concurrency-safe pool of Searcher clones over one graph — the
// parallel execution substrate for batch and server traffic. A single
// Searcher is cheap to query repeatedly but owns mutable scratch space and a
// candidate cache, so it must not be shared across goroutines; Pool hands
// each concurrent caller its own clone (sharing the immutable core/truss
// decompositions) and recycles clones across requests so their scratch
// buffers and warmed candidate caches survive between queries — the
// property that makes repeated-community server traffic cheap.
//
// Snapshot-isolated serving adds one twist: the graph a worker should query
// changes with every published snapshot. SetBase repoints the pool at the
// latest snapshot's base searcher (new clones start there), and GetFor hands
// out a worker rebound to the exact snapshot a reader pinned — an O(1)
// pointer adoption that keeps the worker's warmed cache, not a re-clone.
//
// The zero Pool is not usable; create one with NewPool. All methods are safe
// for concurrent use.
type Pool struct {
	base    atomic.Pointer[Searcher]
	p       sync.Pool
	created atomic.Int64
}

// NewPool creates a pool of clones of base. base itself is never handed
// out, so it remains safe to use on the caller's own goroutine.
func NewPool(base *Searcher) *Pool {
	pl := &Pool{}
	pl.base.Store(base)
	pl.p.New = func() any {
		pl.created.Add(1)
		return pl.base.Load().Clone()
	}
	return pl
}

// Base returns the Searcher the pool currently clones from.
func (p *Pool) Base() *Searcher { return p.base.Load() }

// SetBase atomically repoints the pool at a new base searcher: workers
// created after this call clone the new base. Workers already in the pool
// keep their old binding until a GetFor rebinds them — snapshot serving
// always goes through GetFor, so readers never see a mixed state.
func (p *Pool) SetBase(base *Searcher) { p.base.Store(base) }

// Created returns the number of worker clones this pool has ever created —
// the pool-size signal /api/health reports (sync.Pool does not expose its
// idle count; clones are only created when all existing ones are busy, so
// the high-water mark tracks peak concurrency).
func (p *Pool) Created() int64 { return p.created.Load() }

// Get returns a Searcher for exclusive use by the calling goroutine, bound
// to whatever base it last served (the pool's current base for fresh
// clones). Return it with Put when done; Searchers that are never Put are
// simply collected. Snapshot readers use GetFor instead.
func (p *Pool) Get() *Searcher { return p.p.Get().(*Searcher) }

// GetFor returns a Searcher rebound to base's graph and decomposition — the
// snapshot-pinned variant of Get. The rebind is O(1) and keeps the worker's
// scratch space and candidate cache (see Searcher.AdoptFrom).
func (p *Pool) GetFor(base *Searcher) *Searcher {
	w := p.Get()
	w.AdoptFrom(base)
	return w
}

// Put returns a Searcher obtained from Get or GetFor to the pool.
func (p *Pool) Put(s *Searcher) { p.p.Put(s) }

// Do runs f with a pooled Searcher, returning the Searcher afterwards even
// if f panics.
func (p *Pool) Do(f func(*Searcher) error) error {
	s := p.Get()
	defer p.Put(s)
	return f(s)
}
