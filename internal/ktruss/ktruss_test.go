package ktruss

import (
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/graph"
)

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	return b.Build()
}

func sorted(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEdgeKeySymmetric(t *testing.T) {
	if edgeKey(1, 2) != edgeKey(2, 1) {
		t.Fatal("edgeKey not symmetric")
	}
	if edgeKey(1, 2) == edgeKey(1, 3) {
		t.Fatal("edgeKey collision")
	}
}

func TestDecomposeTriangle(t *testing.T) {
	g := clique(3)
	truss := Decompose(g)
	for key, tv := range truss {
		if tv != 3 {
			t.Fatalf("triangle edge %x truss = %d, want 3", key, tv)
		}
	}
	if len(truss) != 3 {
		t.Fatalf("edge count = %d", len(truss))
	}
}

func TestDecomposeClique(t *testing.T) {
	// Every edge of K_n has truss number n.
	for n := 3; n <= 6; n++ {
		truss := Decompose(clique(n))
		for key, tv := range truss {
			if tv != int32(n) {
				t.Fatalf("K_%d edge %x truss = %d, want %d", n, key, tv, n)
			}
		}
	}
}

func TestDecomposeMixed(t *testing.T) {
	// K4 (0..3) plus a pendant edge 3-4 plus a triangle 4-5-6.
	b := graph.NewBuilder(7)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 4)
	g := b.Build()
	truss := Decompose(g)
	if got := truss[edgeKey(0, 1)]; got != 4 {
		t.Fatalf("K4 edge truss = %d, want 4", got)
	}
	if got := truss[edgeKey(3, 4)]; got != 2 {
		t.Fatalf("pendant edge truss = %d, want 2", got)
	}
	if got := truss[edgeKey(4, 5)]; got != 3 {
		t.Fatalf("triangle edge truss = %d, want 3", got)
	}
	nums := TrussNumbers(truss)
	if len(nums) != 3 || nums[0] != 2 || nums[1] != 3 || nums[2] != 4 {
		t.Fatalf("TrussNumbers = %v", nums)
	}
}

// Truss validity: for every k, the subgraph of edges with truss >= k has
// every edge in >= k-2 triangles of that subgraph; and truss numbers are
// maximal (edge support in the (k+1)-candidate subgraph is < k-1).
func TestDecomposeInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(321))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rnd.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		truss := Decompose(g)
		maxT := int32(2)
		for _, tv := range truss {
			if tv > maxT {
				maxT = tv
			}
			if tv < 2 {
				t.Fatalf("truss number %d < 2", tv)
			}
		}
		for k := int32(3); k <= maxT; k++ {
			// Edge set with truss >= k.
			in := func(u, v graph.V) bool { return truss[edgeKey(u, v)] >= k }
			for u := 0; u < n; u++ {
				for _, v := range g.Neighbors(graph.V(u)) {
					if graph.V(u) >= v || !in(graph.V(u), v) {
						continue
					}
					// Count triangles within the >=k subgraph.
					c := 0
					forEachCommon(g, graph.V(u), v, func(w graph.V) {
						if in(graph.V(u), w) && in(v, w) {
							c++
						}
					})
					if c < int(k)-2 {
						t.Fatalf("trial %d: edge (%d,%d) truss %d has only %d triangles at k=%d",
							trial, u, v, truss[edgeKey(graph.V(u), v)], c, k)
					}
				}
			}
		}
	}
}

func TestCommunityOf(t *testing.T) {
	// Two K4s sharing nothing, bridged by one edge.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			b.AddEdge(graph.V(i+4), graph.V(j+4))
		}
	}
	b.AddEdge(3, 4) // bridge, in no triangle
	g := b.Build()
	truss := Decompose(g)

	got := sorted(CommunityOf(g, truss, 0, 4))
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("4-truss community of 0 = %v", got)
	}
	// k=3: still only the K4 (bridge has truss 2).
	got = sorted(CommunityOf(g, truss, 0, 3))
	if len(got) != 4 {
		t.Fatalf("3-truss community of 0 = %v", got)
	}
	// k=2: bridge included, whole graph.
	got = CommunityOf(g, truss, 0, 2)
	if len(got) != 8 {
		t.Fatalf("2-truss community size = %d, want 8", len(got))
	}
	// No 5-truss anywhere.
	if got := CommunityOf(g, truss, 0, 5); got != nil {
		t.Fatalf("5-truss community = %v, want nil", got)
	}
}

func TestCheckerMatchesDecompose(t *testing.T) {
	rnd := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rnd.Intn(25)
		b := graph.NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		truss := Decompose(g)
		c := NewChecker(g)
		all := make([]graph.V, n)
		for i := range all {
			all[i] = graph.V(i)
		}
		for k := 3; k <= 5; k++ {
			q := graph.V(rnd.Intn(n))
			want := CommunityOf(g, truss, q, k)
			got := c.KTrussWithin(all, q, k)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d k=%d q=%d: feasibility mismatch", trial, k, q)
			}
			if got == nil {
				continue
			}
			gs, ws := sorted(got), sorted(want)
			if len(gs) != len(ws) {
				t.Fatalf("trial %d k=%d q=%d: %v vs %v", trial, k, q, gs, ws)
			}
			for i := range gs {
				if gs[i] != ws[i] {
					t.Fatalf("trial %d k=%d q=%d: %v vs %v", trial, k, q, gs, ws)
				}
			}
		}
	}
}

func TestCheckerRestricted(t *testing.T) {
	// K4 0..3; restricting S to {0,1,2} leaves a triangle: a 3-truss but not
	// a 4-truss.
	g := clique(4)
	c := NewChecker(g)
	S := []graph.V{0, 1, 2}
	if got := c.KTrussWithin(S, 0, 3); len(got) != 3 {
		t.Fatalf("restricted 3-truss = %v", got)
	}
	if got := c.KTrussWithin(S, 0, 4); got != nil {
		t.Fatalf("restricted 4-truss = %v, want nil", got)
	}
	// q outside S.
	if got := c.KTrussWithin(S, 3, 3); got != nil {
		t.Fatalf("q outside S = %v, want nil", got)
	}
}

func TestCheckerReuse(t *testing.T) {
	g := clique(5)
	c := NewChecker(g)
	a := append([]graph.V(nil), c.KTrussWithin([]graph.V{0, 1, 2, 3, 4}, 0, 5)...)
	_ = c.KTrussWithin([]graph.V{0, 1, 2}, 0, 3)
	b := append([]graph.V(nil), c.KTrussWithin([]graph.V{0, 1, 2, 3, 4}, 0, 5)...)
	if len(a) != len(b) {
		t.Fatalf("reuse corrupted: %v vs %v", a, b)
	}
}

func BenchmarkCheckerKTrussWithin(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	n := 500
	bb := graph.NewBuilder(n)
	for i := 0; i < 5000; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	g := bb.Build()
	c := NewChecker(g)
	S := make([]graph.V, n)
	for i := range S {
		S[i] = graph.V(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.KTrussWithin(S, 0, 4)
	}
}
