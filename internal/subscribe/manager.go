package subscribe

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
)

// ManagerOptions assembles a Manager.
type ManagerOptions struct {
	// Current returns the newest published snapshot — the view
	// registration-time initial evaluations run against. Required. May
	// return nil while a replica has not completed its first sync; initial
	// evaluations then wait for the post-sync notification.
	Current func() *snapshot.Snap
	// Hub sizes the delivery core; see Options.
	Hub Options
	// Logger receives evaluation failures. Default slog.Default().
	Logger *slog.Logger
	// EvalWorkers bounds concurrent re-evaluations per dispatch round
	// (default GOMAXPROCS).
	EvalWorkers int
	// EvalTimeout bounds one re-evaluation (default 10s). An evaluation
	// that times out leaves the subscription's last result standing and
	// forces a retry on the next publication.
	EvalTimeout time.Duration
	// SweepEvery is the reap cadence for expired detached subscriptions
	// (default 30s).
	SweepEvery time.Duration
}

func (o ManagerOptions) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

func (o ManagerOptions) evalWorkers() int {
	if o.EvalWorkers > 0 {
		return o.EvalWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ManagerOptions) evalTimeout() time.Duration {
	if o.EvalTimeout > 0 {
		return o.EvalTimeout
	}
	return 10 * time.Second
}

func (o ManagerOptions) sweepEvery() time.Duration {
	if o.SweepEvery > 0 {
		return o.SweepEvery
	}
	return 30 * time.Second
}

// maxPendEvents bounds the coalesced event list; past it the pending work
// degrades to a full re-evaluation, which every gate treats as "evaluate
// everything" — cheaper than scanning an unbounded backlog per sub.
const maxPendEvents = 4096

// pend is the work coalesced between dispatch rounds: the latest published
// snapshot and every applied event since the last round.
type pend struct {
	snap   *snapshot.Snap
	events []snapshot.AppliedEvent
	full   bool // unknown or oversized change set: gate everything in
	has    bool // a publication arrived
	reg    bool // a registration arrived
	at     time.Time // arrival of the oldest un-dispatched publication
}

// gate is the Manager's per-subscription invalidation state, owned by the
// dispatch loop (stored in Sub.Gate).
type gate struct {
	needsInit  bool
	forceEval  bool // last evaluation failed; retry on the next publication
	alwaysEval bool // θ-SAC: the catchment disk reads every location
	kcore      bool // structure metric is k-core (core-number scans are valid)
	lastSeq    uint64
	q          graph.V
	k          int
	// Candidate closure of (q, k) as of the last evaluation. members is the
	// candidate set X (nil when q had no community), frontier its outside
	// neighbors, in marks members 1 and frontier 2.
	members  []graph.V
	frontier []graph.V
	in       map[graph.V]byte
}

const (
	inMember   = 1
	inFrontier = 2
)

// Manager drives standing queries off one snapshot engine: it coalesces
// post-publish notifications, filters subscriptions through the
// invalidation gate, re-runs the affected ones on pooled workers pinned to
// the published snapshot, and applies the diffs to the Hub.
//
// Gate soundness (k-core structure): every registered algorithm except
// θ-SAC is a pure function of induced(X) and the locations of X, where X is
// the connected component of q in the global k-core. So a publication
// cannot change the answer unless it (a) moves a member of X, or (b)
// changes X itself. X changes only through topology events, and only when —
// on the *new* snapshot — an edge touches the old closure, a member's core
// number fell below k (it left the k-core, or X lost a vertex reachable
// only through it... any member loss shows as some member's edge or core
// change), or a frontier vertex's core number reached k (X can only grow
// through its frontier, or via a new edge landing on X, which case (a
// touched endpoint) already catches). A subscription with no community
// re-evaluates only when q's own core number reaches k. θ-SAC and non-k-core
// structure metrics fall back to always-evaluate on the relevant event kind.
type Manager struct {
	opt ManagerOptions
	hub *Hub

	mu   sync.Mutex
	pend pend

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// processed is the newest snapshot seq whose dispatch round completed —
	// tests use it to wait for quiescence.
	processedMu sync.Mutex
	processed   uint64

	closeOnce sync.Once
}

// NewManager builds and starts a Manager. Hook it to an engine with
// eng.SetOnPublish(m.Notify) (or replica.Follower.SetOnPublish).
func NewManager(opt ManagerOptions) *Manager {
	m := &Manager{
		opt:  opt,
		hub:  NewHub(opt.Hub),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.dispatchLoop()
	return m
}

// Hub exposes the delivery core (metrics, Active).
func (m *Manager) Hub() *Hub { return m.hub }

// Notify is the engine's post-publish hook. It runs on the writer's
// critical path, so it only coalesces: record the newest snapshot, append
// the events, kick the dispatcher. A nil events slice means the change set
// is unknown (a replica resync swapped the whole engine) and every
// subscription must re-evaluate.
func (m *Manager) Notify(snap *snapshot.Snap, events []snapshot.AppliedEvent) {
	m.mu.Lock()
	m.pend.snap = snap
	m.pend.has = true
	if m.pend.at.IsZero() {
		m.pend.at = time.Now()
	}
	if events == nil {
		m.pend.full = true
		m.pend.events = nil
	} else if !m.pend.full {
		m.pend.events = append(m.pend.events, events...)
		if len(m.pend.events) > maxPendEvents {
			m.pend.full = true
			m.pend.events = nil
		}
	}
	m.mu.Unlock()
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Register creates a standing query under id and schedules its initial
// evaluation; the resulting init event arrives on any attached stream. The
// query must be pre-validated with a canonical Algo name.
func (m *Manager) Register(id string, q core.Query) (*Sub, error) {
	spec, ok := core.LookupAlgo(q.Algo)
	if !ok {
		return nil, errors.New("subscribe: unvalidated query reached Register")
	}
	q.Algo = spec.Name
	sub, err := m.hub.Register(id, q)
	if err != nil {
		return nil, err
	}
	sub.Gate = &gate{needsInit: true, alwaysEval: spec.Name == "theta"}
	m.mu.Lock()
	m.pend.reg = true
	m.mu.Unlock()
	select {
	case m.kick <- struct{}{}:
	default:
	}
	return sub, nil
}

// Get looks a subscription up by id.
func (m *Manager) Get(id string) (*Sub, bool) { return m.hub.Get(id) }

// ProcessedSeq returns the newest snapshot sequence fully dispatched
// (evaluations applied). Tests poll it for quiescence.
func (m *Manager) ProcessedSeq() uint64 {
	m.processedMu.Lock()
	defer m.processedMu.Unlock()
	return m.processed
}

// Close stops the dispatcher and drains every stream with a terminal bye.
// Pending publications are dispatched first, so already-applied writes
// reach subscribers before the goodbye.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		<-m.done
		m.drainPending()
		m.hub.CloseAll()
	})
}

// drainPending runs one final dispatch so deltas from writes that committed
// before the drain reach their streams ahead of the bye.
func (m *Manager) drainPending() {
	m.mu.Lock()
	p := m.pend
	m.pend = pend{}
	m.mu.Unlock()
	if p.has || p.reg {
		m.dispatch(p)
	}
}

func (m *Manager) dispatchLoop() {
	defer close(m.done)
	sweep := time.NewTicker(m.opt.sweepEvery())
	defer sweep.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-sweep.C:
			m.hub.Sweep()
			continue
		case <-m.kick:
		}
		for {
			m.mu.Lock()
			p := m.pend
			m.pend = pend{}
			m.mu.Unlock()
			if !p.has && !p.reg {
				break
			}
			m.dispatch(p)
		}
	}
}

// dispatch runs one round: gate every subscription against the coalesced
// events, re-evaluate the survivors concurrently, record progress.
func (m *Manager) dispatch(p pend) {
	snap := p.snap
	if snap == nil {
		snap = m.opt.Current()
	}
	if snap == nil {
		// Replica before first sync: initial evaluations wait for the
		// post-sync full notification; re-mark so they are not lost.
		m.mu.Lock()
		m.pend.reg = m.pend.reg || p.reg
		m.mu.Unlock()
		return
	}
	var evals []*Sub
	for _, sub := range m.hub.Snapshot() {
		g := sub.Gate.(*gate)
		switch {
		case g.needsInit || g.forceEval:
			evals = append(evals, sub)
		case !p.has:
			// registration-only kick: nothing changed for this sub
		case !p.full && snap.Seq() <= g.lastSeq:
			// already evaluated this state (initial eval ran on it)
		case m.gateNeeds(g, p, snap):
			evals = append(evals, sub)
		default:
			m.hub.skipped.Inc()
		}
	}
	if len(evals) > 0 {
		sem := make(chan struct{}, m.opt.evalWorkers())
		var wg sync.WaitGroup
		for _, sub := range evals {
			wg.Add(1)
			sem <- struct{}{}
			go func(sub *Sub) {
				defer wg.Done()
				defer func() { <-sem }()
				m.evaluate(sub, snap, p.at)
			}(sub)
		}
		wg.Wait()
	}
	m.processedMu.Lock()
	if snap.Seq() > m.processed {
		m.processed = snap.Seq()
	}
	m.processedMu.Unlock()
}

// gateNeeds decides whether the coalesced events can have changed this
// subscription's answer; see the Manager doc comment for the argument.
func (m *Manager) gateNeeds(g *gate, p pend, snap *snapshot.Snap) bool {
	if g.alwaysEval || p.full {
		return true
	}
	topo := false
	for i := range p.events {
		ev := &p.events[i]
		if ev.Checkin {
			if g.in[ev.V] == inMember {
				return true
			}
		} else {
			topo = true
			if g.in[ev.U] != 0 || g.in[ev.W] != 0 {
				return true
			}
		}
	}
	if !topo {
		return false
	}
	if !g.kcore {
		// Truss/clique communities have no cheap remote-cascade test; any
		// topology change re-evaluates.
		return true
	}
	return m.coreCascade(g, snap)
}

// coreCascade scans the new snapshot's core numbers for the non-local ways
// X can change: a member dropping out of the k-core, or a frontier vertex
// entering it. (Frontier vertices have core < k at evaluation time: a
// frontier vertex already in the k-core would be a k-core neighbor of X and
// hence inside X.)
func (m *Manager) coreCascade(g *gate, snap *snapshot.Snap) bool {
	k := g.k
	if g.members == nil {
		return snap.CoreNumber(g.q) >= k
	}
	for _, v := range g.members {
		if snap.CoreNumber(v) < k {
			return true
		}
	}
	for _, f := range g.frontier {
		if snap.CoreNumber(f) >= k {
			return true
		}
	}
	return false
}

// evaluate re-runs one standing query pinned to snap, refreshes the gate
// closure, and applies the diff.
func (m *Manager) evaluate(sub *Sub, snap *snapshot.Snap, publishedAt time.Time) {
	g := sub.Gate.(*gate)
	s := snap.Get()
	defer snap.Put(s)
	ctx, cancel := context.WithTimeout(context.Background(), m.opt.evalTimeout())
	defer cancel()
	m.hub.evals.Inc()
	res, err := s.Search(ctx, sub.Query)
	var er EvalResult
	switch {
	case err == nil:
		er.Members = res.Members
		er.MCC = Circle{X: res.MCC.C.X, Y: res.MCC.C.Y, R: res.MCC.R}
		er.Delta = res.Delta
	case errors.Is(err, core.ErrNoCommunity):
		er.NoCommunity = true
	default:
		g.forceEval = true
		m.opt.logger().Warn("standing query evaluation failed; will retry on next publication",
			"sub", sub.ID, "q", int64(sub.Query.Q), "k", sub.Query.K, "err", err)
		return
	}
	g.needsInit = false
	g.forceEval = false
	g.lastSeq = snap.Seq()
	g.kcore = s.Structure() == core.StructureKCore
	g.q = sub.Query.Q
	g.k = sub.Query.K
	if !g.alwaysEval {
		members, frontier := s.CandidateClosure(sub.Query.Q, sub.Query.K)
		g.members, g.frontier = members, frontier
		g.in = make(map[graph.V]byte, len(members)+len(frontier))
		for _, v := range members {
			g.in[v] = inMember
		}
		for _, f := range frontier {
			g.in[f] = inFrontier
		}
	}
	sub.Apply(&er, publishedAt)
}
