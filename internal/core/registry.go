package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// The algorithm registry: the single source of truth for which SAC
// algorithms exist, what parameters each takes, how those parameters are
// validated and defaulted, and how a unified Query is dispatched onto the
// per-algorithm implementations. The facade, the batch layer, the HTTP
// server's /v1/algorithms and request decoding, the sacquery CLI flags and
// the bench harness all derive from this table rather than hard-coding
// their own copies of the algorithm list.

// DefaultAlgo is the algorithm a Query with an empty Algo runs — AppFast,
// the fastest algorithm with a guarantee, matching the HTTP server's
// historical default.
const DefaultAlgo = "appfast"

// ParamSpec describes one named float parameter of an algorithm: its wire
// and CLI name, documentation, whether it is required, its default when
// absent, and the valid range. Min/Max with the *Excl flags describe an
// interval; an infinite Max means unbounded above.
type ParamSpec struct {
	Name     string
	Doc      string
	Required bool
	Default  float64 // meaningful only when !Required
	Min      float64
	Max      float64 // +Inf = unbounded
	MinExcl  bool
	MaxExcl  bool
}

// MarshalJSON emits the schema shape /v1/algorithms serves: an unbounded
// Max is omitted rather than emitted as +Inf (which JSON cannot express),
// and Default appears only for optional parameters.
func (p ParamSpec) MarshalJSON() ([]byte, error) {
	type wire struct {
		Name     string   `json:"name"`
		Type     string   `json:"type"`
		Doc      string   `json:"doc,omitempty"`
		Required bool     `json:"required,omitempty"`
		Default  *float64 `json:"default,omitempty"`
		Min      float64  `json:"min"`
		Max      *float64 `json:"max,omitempty"` // absent = unbounded
		MinExcl  bool     `json:"minExclusive,omitempty"`
		MaxExcl  bool     `json:"maxExclusive,omitempty"`
	}
	w := wire{Name: p.Name, Type: "float", Doc: p.Doc, Required: p.Required,
		Min: p.Min, MinExcl: p.MinExcl, MaxExcl: p.MaxExcl}
	if !p.Required {
		d := p.Default
		w.Default = &d
	}
	if !math.IsInf(p.Max, 1) {
		m := p.Max
		w.Max = &m
	}
	return json.Marshal(w)
}

// validate checks a provided value against the spec's range, rejecting
// non-finite values unconditionally.
func (p ParamSpec) validate(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &QueryError{Code: ErrCodeInvalidParam, Field: p.Name,
			Reason: fmt.Sprintf("%s = %v is not finite", p.Name, v)}
	}
	if v < p.Min || (p.MinExcl && v == p.Min) || v > p.Max || (p.MaxExcl && v == p.Max) {
		lo, hi := "[", "]"
		if p.MinExcl {
			lo = "("
		}
		if p.MaxExcl || math.IsInf(p.Max, 1) {
			hi = ")"
		}
		max := "inf"
		if !math.IsInf(p.Max, 1) {
			max = fmt.Sprintf("%v", p.Max)
		}
		return &QueryError{Code: ErrCodeInvalidParam, Field: p.Name,
			Reason: fmt.Sprintf("%s = %v out of range %s%v, %s%s", p.Name, v, lo, p.Min, max, hi)}
	}
	return nil
}

// resolvedParams is the validated, defaulted parameter set Search hands to
// an algorithm runner. A plain struct (not a map) so the per-query hot path
// allocates nothing for dispatch.
type resolvedParams struct {
	epsF, epsA, theta float64
}

// AlgoSpec describes one registered algorithm. Lookup is by Name or any of
// Aliases, case-insensitively.
type AlgoSpec struct {
	// Name is the canonical wire name ("appfast", "exact+", ...).
	Name string `json:"name"`
	// Aliases are accepted alternative spellings.
	Aliases []string `json:"aliases,omitempty"`
	// Ratio is the approximation ratio as a human-readable expression
	// ("1", "2", "2+epsF", ...); "-" for θ-SAC, which answers a different
	// problem.
	Ratio string `json:"ratio"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Params are the algorithm-specific parameters (q and k are universal).
	Params []ParamSpec `json:"params"`

	run func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error)
}

// Param returns the spec's parameter named name, if any.
func (a *AlgoSpec) Param(name string) (ParamSpec, bool) {
	for _, p := range a.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// registry lists the six SAC algorithms in presentation order (fastest
// approximation first, matching /v1/algorithms and the paper's Table 6).
var registry = []*AlgoSpec{
	{
		Name:  "appfast",
		Ratio: "2+epsF",
		Doc:   "binary-search approximation (Algorithm 3); the serving default",
		Params: []ParamSpec{{
			Name: "epsF", Doc: "early-stopping slack; 0 converges to the AppInc answer",
			Default: 0.5, Min: 0, Max: math.Inf(1),
		}},
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.AppFastCtx(ctx, q.Q, q.K, p.epsF)
		},
	},
	{
		Name:  "appinc",
		Ratio: "2",
		Doc:   "parameter-free incremental 2-approximation (Algorithm 2)",
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.AppIncCtx(ctx, q.Q, q.K)
		},
	},
	{
		Name:  "appacc",
		Ratio: "1+epsA",
		Doc:   "anchor-refining (1+epsA)-approximation (Algorithm 4)",
		Params: []ParamSpec{{
			Name: "epsA", Doc: "approximation slack",
			Default: 0.5, Min: 0, Max: 1, MinExcl: true, MaxExcl: true,
		}},
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.AppAccCtx(ctx, q.Q, q.K, p.epsA)
		},
	},
	{
		Name:    "exact+",
		Aliases: []string{"exactplus"},
		Ratio:   "1",
		Doc:     "exact search via AppAcc-pruned circle enumeration (Algorithm 5)",
		Params: []ParamSpec{{
			Name: "epsA", Doc: "slack of the internal AppAcc phase (smaller = tighter pruning)",
			Default: 1e-3, Min: 0, Max: 1, MinExcl: true, MaxExcl: true,
		}},
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.ExactPlusCtx(ctx, q.Q, q.K, p.epsA)
		},
	},
	{
		Name:  "exact",
		Ratio: "1",
		Doc:   "naive exact enumeration (Algorithm 1); correctness baseline",
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.ExactCtx(ctx, q.Q, q.K)
		},
	},
	{
		Name:    "theta",
		Aliases: []string{"thetasac", "theta-sac"},
		Ratio:   "-",
		Doc:     "fixed-radius θ-SAC (Section 3): the k-ĉore inside O(q, θ)",
		Params: []ParamSpec{{
			Name: "theta", Doc: "catchment circle radius", Required: true,
			Min: 0, Max: math.Inf(1), MinExcl: true,
		}},
		run: func(ctx context.Context, s *Searcher, q Query, p resolvedParams) (*Result, error) {
			return s.ThetaSACCtx(ctx, q.Q, q.K, p.theta)
		},
	},
}

// algoIndex maps every lowercase name and alias to its spec.
var algoIndex = func() map[string]*AlgoSpec {
	idx := make(map[string]*AlgoSpec)
	for _, spec := range registry {
		idx[strings.ToLower(spec.Name)] = spec
		for _, a := range spec.Aliases {
			idx[strings.ToLower(a)] = spec
		}
	}
	return idx
}()

// Algorithms returns the registered algorithm specs in presentation order.
// The slice is shared; callers must not mutate it.
func Algorithms() []*AlgoSpec { return registry }

// LookupAlgo resolves an algorithm name or alias (case-insensitive). The
// empty name resolves to DefaultAlgo.
func LookupAlgo(name string) (*AlgoSpec, bool) {
	if name == "" {
		name = DefaultAlgo
	}
	spec, ok := algoIndex[strings.ToLower(name)]
	return spec, ok
}
