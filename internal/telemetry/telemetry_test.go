package telemetry

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// TestTextFormat pins the exposition format: HELP/TYPE lines, counter and
// gauge samples, label formatting, and family name sorting.
func TestTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sac_b_total", "second family").Add(3)
	r.CounterVec("sac_a_total", "first family", "route", "code").With("/v1/query", "200").Inc()
	r.Gauge("sac_c", "a gauge").Set(2.5)

	got := render(r)
	want := `# HELP sac_a_total first family
# TYPE sac_a_total counter
sac_a_total{route="/v1/query",code="200"} 1
# HELP sac_b_total second family
# TYPE sac_b_total counter
sac_b_total 3
# HELP sac_c a gauge
# TYPE sac_c gauge
sac_c 2.5
`
	if got != want {
		t.Errorf("rendered text:\n%s\nwant:\n%s", got, want)
	}
}

// TestEscaping pins label-value and help escaping: backslash, quote,
// newline.
func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("sac_esc", "help with \\ backslash\nand newline", "path").
		With("a\\b\"c\nd").Set(1)
	got := render(r)
	wantHelp := `# HELP sac_esc help with \\ backslash\nand newline`
	wantSample := `sac_esc{path="a\\b\"c\nd"} 1`
	if !strings.Contains(got, wantHelp) {
		t.Errorf("help not escaped: %q missing from:\n%s", wantHelp, got)
	}
	if !strings.Contains(got, wantSample) {
		t.Errorf("label not escaped: %q missing from:\n%s", wantSample, got)
	}
}

// TestHistogramCumulativity pins the histogram rendering: buckets are
// cumulative, +Inf equals _count, _sum adds up, le values format cleanly.
func TestHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	// Observations are exact binary fractions so _sum renders without
	// accumulated float noise.
	h := r.Histogram("sac_lat_seconds", "latency", []float64{0.25, 1, 4})
	for _, v := range []float64{0.125, 0.125, 0.5, 2, 8} {
		h.Observe(v)
	}
	got := render(r)
	for _, line := range []string{
		`sac_lat_seconds_bucket{le="0.25"} 2`,
		`sac_lat_seconds_bucket{le="1"} 3`,
		`sac_lat_seconds_bucket{le="4"} 4`,
		`sac_lat_seconds_bucket{le="+Inf"} 5`,
		`sac_lat_seconds_sum 10.75`,
		`sac_lat_seconds_count 5`,
		"# TYPE sac_lat_seconds histogram",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

// TestHistogramBoundaryInclusive pins le semantics: a value equal to a
// bucket bound lands in that bucket.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sac_edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // exactly on the first bound
	got := render(r)
	if !strings.Contains(got, `sac_edge_seconds_bucket{le="1"} 1`) {
		t.Errorf("value on bound not counted le-inclusive:\n%s", got)
	}
}

// TestHistogramVecLabels pins le composition with existing labels.
func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("sac_q_seconds", "x", []float64{1}, "algo").With("exact+").Observe(0.5)
	got := render(r)
	for _, line := range []string{
		`sac_q_seconds_bucket{algo="exact+",le="1"} 1`,
		`sac_q_seconds_bucket{algo="exact+",le="+Inf"} 1`,
		`sac_q_seconds_sum{algo="exact+"} 0.5`,
		`sac_q_seconds_count{algo="exact+"} 1`,
	} {
		if !strings.Contains(got, line) {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

// TestGetOrCreate pins idempotent registration: same family twice returns
// the same instrument; GaugeFunc re-registration is last-wins.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sac_x_total", "x")
	b := r.Counter("sac_x_total", "x")
	if a != b {
		t.Error("Counter registered twice returned different instruments")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("second handle does not observe first handle's increment")
	}

	r.GaugeFunc("sac_fn", "fn", func() float64 { return 1 })
	r.GaugeFunc("sac_fn", "fn", func() float64 { return 2 })
	if got := render(r); !strings.Contains(got, "sac_fn 2") {
		t.Errorf("GaugeFunc re-registration not last-wins:\n%s", got)
	}
}

// TestNilRegistry pins nil-safety end to end: every constructor on a nil
// registry and every method on the resulting nil instruments must no-op.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("a", "x").Inc()
	r.Counter("a", "x").Add(2)
	r.CounterVec("b", "x", "l").With("v").Inc()
	r.Gauge("c", "x").Set(1)
	r.Gauge("c", "x").Add(1)
	r.GaugeVec("d", "x", "l").With("v").Set(1)
	r.GaugeFunc("e", "x", func() float64 { return 1 })
	r.CounterFunc("f", "x", func() uint64 { return 1 })
	r.Histogram("g", "x", nil).Observe(1)
	r.HistogramVec("h", "x", nil, "l").With("v").Observe(1)
	var b strings.Builder
	r.WriteText(&b)
	if b.Len() != 0 {
		t.Errorf("nil registry rendered output: %q", b.String())
	}
}

// TestConcurrentScrape hammers instruments from many goroutines while
// scraping concurrently; run under -race this pins the lock discipline,
// and afterwards the totals must balance.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("sac_hits_total", "x", "worker")
	h := r.Histogram("sac_dur_seconds", "x", nil)
	g := r.Gauge("sac_inflight", "x")

	const workers, iters = 8, 500
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				r.WriteText(&b)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				cv.With(lbl).Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if h.Count() != workers*iters {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*iters)
	}
	var total uint64
	for w := 0; w < workers; w++ {
		total += cv.With(string(rune('a' + w))).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total %d, want %d", total, workers*iters)
	}
	if g.Value() != 0 {
		t.Errorf("gauge ended at %v, want 0", g.Value())
	}
}

// TestHandler pins the scrape endpoint's content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("sac_one_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "sac_one_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestSpanTree pins span parenting, context propagation, attributes and
// the rendered tree shape.
func TestSpanTree(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "query")
	root.SetAttr("algo", "exact")
	_, child1 := StartSpan(ctx, "shard-leg")
	child1.SetAttr("shard", 0)
	child1.End()
	ctx2, child2 := StartSpan(ctx, "shard-leg")
	_, grand := StartSpan(ctx2, "merge")
	grand.End()
	child2.End()
	root.End()

	if SpanFromContext(ctx) != root {
		t.Error("SpanFromContext did not return the root")
	}
	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if grand.Root() != root {
		t.Error("Root() did not walk to the root span")
	}
	tree := root.Tree()
	lines := strings.Split(tree, "\n")
	if len(lines) != 4 {
		t.Fatalf("tree has %d lines, want 4:\n%s", len(lines), tree)
	}
	if !strings.HasPrefix(lines[0], "query span="+root.ID) || !strings.Contains(lines[0], "algo=exact") {
		t.Errorf("root line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  shard-leg") || !strings.Contains(lines[1], "shard=0") {
		t.Errorf("child line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "    merge") {
		t.Errorf("grandchild line: %q", lines[3])
	}

	// Nil-safety.
	var nilSpan *Span
	nilSpan.End()
	nilSpan.SetAttr("k", 1)
	if nilSpan.Tree() != "" || nilSpan.Duration() != 0 || nilSpan.Root() != nil {
		t.Error("nil span methods not no-ops")
	}
}

// TestSpanConcurrentChildren creates children from parallel goroutines —
// the router's per-shard legs — under -race.
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "assemble")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, leg := StartSpan(ctx, "leg")
			leg.SetAttr("i", i)
			leg.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 8 {
		t.Errorf("%d children, want 8", got)
	}
}
