package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps unit tests fast; the real runs happen via cmd/sacbench
// and bench_test.go.
func tinyConfig() Config {
	return Config{
		Datasets: []string{"brightkite"},
		Scale:    0.01,
		Queries:  6,
		K:        4,
		MinCore:  4,
		Seed:     7,
		ExactCap: 300,
		Quick:    true,
	}
}

func TestFig9AppFastShape(t *testing.T) {
	rows, err := Fig9AppFast(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(epsFSweep) {
		t.Fatalf("rows = %d, want %d", len(rows), len(epsFSweep))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Fatalf("no queries answered for eps=%v", r.Eps)
		}
		// Headline claim: actual ratio well under the theoretical bound, and
		// never better than 1 (the guarantee is an upper bound; measured
		// ratio must be ≥ 1 up to fp noise).
		if r.Actual > r.Theoretical+1e-6 {
			t.Fatalf("actual %v exceeds theoretical %v", r.Actual, r.Theoretical)
		}
		if r.Actual < 1-1e-6 {
			t.Fatalf("actual ratio %v below 1", r.Actual)
		}
	}
}

func TestFig9AppAccShape(t *testing.T) {
	rows, err := Fig9AppAcc(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Actual > 1+r.Eps+1e-6 {
			t.Fatalf("AppAcc ratio %v exceeds 1+εA=%v", r.Actual, 1+r.Eps)
		}
		if r.Actual < 1-1e-6 {
			t.Fatalf("AppAcc ratio %v below 1", r.Actual)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Fig10Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	global, sac := byMethod["Global"], byMethod["Exact+"]
	if global.Found == 0 || sac.Found == 0 {
		t.Fatalf("missing methods: %+v", byMethod)
	}
	// The paper's headline: SAC radii are far below Global's.
	if sac.Radius >= global.Radius {
		t.Fatalf("Exact+ radius %v not below Global %v", sac.Radius, global.Radius)
	}
	// Every SAC variant respects the k constraint (avg degree ≥ k).
	for _, m := range []string{"AppInc", "AppFast(0.5)", "AppAcc(0.5)", "Exact+"} {
		if byMethod[m].AvgDeg < float64(tinyConfig().K)-1e-9 {
			t.Fatalf("%s avg degree %v below k", m, byMethod[m].AvgDeg)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(thetaSweep) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Non-empty percentage is monotone in θ.
	for i := 1; i < len(rows); i++ {
		if rows[i].NonEmptyPct < rows[i-1].NonEmptyPct-1e-9 {
			t.Fatalf("non-empty%% not monotone: %v", rows)
		}
	}
	// θ-SAC radius at the largest θ is at least the exact radius.
	last := rows[len(rows)-1]
	if last.NonEmptyPct > 0 && last.AvgRadius < last.ExactRadius-1e-9 {
		t.Fatalf("θ-SAC radius %v below exact %v", last.AvgRadius, last.ExactRadius)
	}
}

func TestFig12ApproxShape(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Fig12Approx(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kSweep)*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.K == cfg.MinCore && r.Queries == 0 {
			t.Fatalf("no queries answered at k=%d for %s", r.K, r.Algo)
		}
	}
}

func TestFig12ExactShape(t *testing.T) {
	rows, err := Fig12Exact(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Exact+ answers at least as many queries as capped Exact, and at the
	// workload k (= kSweep[0] = 4) both must answer some.
	type key struct {
		algo string
		k    int
	}
	byAlgoK := map[key]Fig12Row{}
	for _, r := range rows {
		byAlgoK[key{r.Algo, r.K}] = r
	}
	k := kSweep[0]
	pe := byAlgoK[key{"Exact+", k}]
	ex := byAlgoK[key{"Exact", k}]
	if pe.Queries == 0 {
		t.Fatal("Exact+ answered nothing at the workload k")
	}
	if ex.Queries > pe.Queries {
		t.Fatalf("capped Exact answered more than Exact+: %d > %d", ex.Queries, pe.Queries)
	}
	// The headline of Figure 12(f-j): Exact+ is dramatically faster.
	if ex.Queries > 0 && pe.Queries > 0 && ex.MeanTime < pe.MeanTime {
		t.Logf("note: Exact (%v) beat Exact+ (%v) on this tiny fixture", ex.MeanTime, pe.MeanTime)
	}
}

func TestFig12ScaleShape(t *testing.T) {
	rows, err := Fig12Scale(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no scalability rows")
	}
	for _, r := range rows {
		if r.Pct < 20 || r.Pct > 100 {
			t.Fatalf("bad pct %d", r.Pct)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	fcfg := DefaultFig13Config()
	fcfg.Config = tinyConfig()
	fcfg.Movers = 8
	fcfg.MinFriends = 4
	fcfg.Days = 40
	fcfg.FastSearch = true
	points, err := Fig13(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(etaSweepDays) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CJS < 0 || p.CJS > 1 || p.CAO < 0 || p.CAO > 1 {
			t.Fatalf("metric out of [0,1]: %+v", p)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	rows, err := Fig14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(epsASweepExactPlus) {
		t.Fatalf("rows = %d", len(rows))
	}
	// |F1| grows (weakly) with εA — the paper's Figure 14(b).
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanF1 < rows[i-1].MeanF1-2 { // slack for tiny workloads
			t.Fatalf("|F1| decreased: %v", rows)
		}
	}
}

func TestTable4(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"brightkite", "syn1"}
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GenN == 0 || r.GenM == 0 {
			t.Fatalf("empty dataset row: %+v", r)
		}
	}
}

func TestTablesStatic(t *testing.T) {
	if len(Table3()) != 5 {
		t.Fatal("Table 3 must list the five algorithms")
	}
	if len(Table5()) != 5 {
		t.Fatal("Table 5 must list the five parameters")
	}
}

func TestRegistryRunAndErrors(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	if err := Run("table3", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Exact+") {
		t.Fatalf("table3 output missing algorithms: %q", buf.String())
	}
	if err := Run("nope", cfg, &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(IDs()) != len(Registry) {
		t.Fatal("IDs incomplete")
	}
	// Every registered experiment has title and paper expectation.
	for id, e := range Registry {
		if e.Title == "" || e.Paper == "" || e.ID != id {
			t.Fatalf("experiment %s metadata incomplete", id)
		}
	}
}

func TestRegistrySmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("registry smoke test is slow")
	}
	var buf bytes.Buffer
	cfg := tinyConfig()
	for _, id := range IDs() {
		if err := Run(id, cfg, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no output produced")
	}
}

func TestExtensionsShape(t *testing.T) {
	cfg := tinyConfig()

	st, err := ExtStructures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 3 {
		t.Fatalf("structure rows = %d, want 3", len(st))
	}
	for _, r := range st {
		if r.Found > 0 && (r.Radius <= 0 || r.Size < float64(cfg.K)+1) {
			t.Fatalf("structure row %+v implausible", r)
		}
	}

	dm, err := ExtMinDiam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dm) != 3 {
		t.Fatalf("diameter rows = %d, want 3", len(dm))
	}
	// The lens variant's mean diameter never exceeds the 2-approx one's.
	var twoApprox, lens float64
	for _, r := range dm {
		switch r.Method {
		case "MinDiam2Approx":
			twoApprox = r.MeanDiam
		case "MinDiamLens":
			lens = r.MeanDiam
		}
	}
	if lens > twoApprox+1e-9 {
		t.Fatalf("lens mean diameter %v exceeds 2-approx %v", lens, twoApprox)
	}

	bt, err := ExtBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt) < 2 {
		t.Fatalf("batch rows = %d, want ≥ 2 (worker sweep)", len(bt))
	}
	for _, r := range bt {
		if r.Queries == 0 {
			t.Fatalf("batch row %+v answered nothing", r)
		}
	}
}

func TestExtensionsRegistered(t *testing.T) {
	var out bytes.Buffer
	if err := Run("extensions", tinyConfig(), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"structure metrics", "spatial objectives", "batch processing"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("extensions output missing %q:\n%s", want, out.String())
		}
	}
}
