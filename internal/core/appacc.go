package core

import (
	"context"
	"fmt"
	"math"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/quadtree"
)

const sqrt2 = 1.4142135623730951

// appAccState is everything AppAcc learns about a query; ExactPlus builds
// its annulus pruning (Section 4.5) on top of it. One instance lives inside
// the Searcher and is reset per query, so the refinement allocates nothing
// in steady state. The anchor gathers run circle range queries against the
// Searcher's per-query grid over S instead of sorting S per anchor.
type appAccState struct {
	members []graph.V // Γ: best community found
	delta   float64   // δ from AppFast(0)
	gamma   float64   // γ: MCC radius of Φ
	rcur    float64   // radius of the best (smallest) MCC found

	S []graph.V // the k-ĉore containing q inside O(q, 2γ) — contains Ψ

	finalCells []quadtree.Cell // surviving anchors of the last processed level
	finalHalf  float64         // half-width of those cells
	degenerate bool            // γ == 0: Φ is already optimal
}

// reset prepares the state for a new query, keeping backing storage.
func (st *appAccState) reset() {
	st.members = st.members[:0]
	st.delta, st.gamma, st.rcur = 0, 0, 0
	st.S = st.S[:0]
	st.finalCells = st.finalCells[:0]
	st.finalHalf = 0
	st.degenerate = false
}

// AppAcc is the (1+εA)-approximation of Section 4.4 (Algorithm 4). It first
// runs AppFast(0) to obtain Φ, δ and γ, then refines a quadtree of anchor
// points over the square of width 2γ centered at q. For each surviving
// anchor p it binary-searches the smallest radius r_p such that O(p, r_p)
// contains a feasible solution, pruning anchors that provably cannot be
// close to the optimal MCC center o (Pruning1 and Pruning2). With cell
// threshold β = δ·εA/(√2(2+εA)) and gap α' = δ·εA/4, Lemma 7 bounds the
// ratio by 1+εA.
func (s *Searcher) AppAcc(q graph.V, k int, epsA float64) (*Result, error) {
	return s.AppAccCtx(context.Background(), q, k, epsA)
}

// AppAccCtx is AppAcc with cancellation: the context is checked once per
// anchor and once per anchor binary-search iteration, returning ErrCanceled
// when it fires.
func (s *Searcher) AppAccCtx(ctx context.Context, q graph.V, k int, epsA float64) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsA <= 0 || epsA >= 1 {
		return nil, fmt.Errorf("core: εA = %v must be in (0,1)", epsA)
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	st, err := s.appAcc(q, k, epsA)
	if err != nil {
		return nil, err
	}
	if s.ctxErr != nil {
		return s.ctxResult(nil, nil)
	}
	res := s.buildResult(q, k, st.members, st.delta)
	return s.finish(res, start), nil
}

// appAcc runs the full anchor refinement and returns its state.
func (s *Searcher) appAcc(q graph.V, k int, epsA float64) (*appAccState, error) {
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	// Step 1: Φ, δ, γ via the εF = 0 binary search (Algorithm 4, line 2).
	phi, delta := s.appFastSearch(cand, q, k, 0)
	gamma := s.g.MCCOf(phi).R

	st := &s.acc
	st.reset()
	st.members = append(st.members, phi...)
	st.delta = delta
	st.gamma = gamma
	st.rcur = gamma
	if gamma <= geom.Eps {
		// All of Φ sits at one point: radius 0 cannot be improved.
		st.degenerate = true
		return st, nil
	}

	// Step 2: S ← the k-ĉore containing q within O(q, 2γ); by Corollary 2 it
	// contains the optimal solution Ψ (Algorithm 4, line 3).
	prefix := cand.prefixWithin(2 * gamma)
	if c := s.feasible(prefix, q, k); c != nil {
		st.S = append(st.S, c...)
	} else {
		// Cannot happen: Φ ⊆ O(q, δ) ⊆ O(q, 2γ) is feasible. Guard anyway.
		st.S = append(st.S, phi...)
	}
	// Index S once; every anchor prefix gather below — and ExactPlus's
	// annulus filter and circle enumeration afterwards — range-query it.
	s.sGrid.Build(s.g, st.S, gridTargetPerCell)

	// Step 3: level-by-level anchor refinement.
	qLoc := s.g.Loc(q)
	betaMin := delta * epsA / (sqrt2 * (2 + epsA)) // threshold on cell width β
	alphaP := delta * epsA / 4                     // binary-search gap α'
	frontier := quadtree.NewFrontier(quadtree.Root(qLoc, gamma))

	for frontier.Len() > 0 && frontier.Half()*2 >= betaMin {
		if s.canceled() {
			return st, nil
		}
		cells := frontier.Cells()
		cover := cells[0].CoverRadius() // √2·β/2 for width β cells
		for i := range cells {
			if s.canceled() {
				return st, nil
			}
			cell := &cells[i]
			// Pruning1: the optimal center o satisfies |o,q| ≤ ropt ≤ rcur,
			// so a cell farther than rcur + cover from q cannot contain o.
			if cell.C.Dist(qLoc) > st.rcur+cover {
				s.stats.AnchorsPruned++
				cell.InfeasibleR = math.Inf(1) // mark dead for expansion
				continue
			}
			// Pruning2 (inherited): O(cell.C, r) is known infeasible for
			// r = InfeasibleR; if even r ≥ rcur + cover is infeasible, the
			// cell cannot contain o.
			if !s.noPruning2 && cell.InfeasibleR >= st.rcur+cover {
				s.stats.AnchorsPruned++
				continue
			}
			s.stats.AnchorsProcessed++
			s.anchorSearch(st, cell, q, k, alphaP, cover)
		}
		// Record this level's survivors for Exact+ before expanding.
		st.finalCells = st.finalCells[:0]
		for _, cell := range cells {
			if !math.IsInf(cell.InfeasibleR, 1) && cell.InfeasibleR < st.rcur+cover &&
				cell.C.Dist(qLoc) <= st.rcur+cover {
				st.finalCells = append(st.finalCells, cell)
			}
		}
		st.finalHalf = frontier.Half()
		// Expand survivors to the next level (Pruning1/2 against the final
		// rcur of this level, as in Algorithm 4 line 25).
		frontier.Expand(func(c quadtree.Cell) bool {
			if math.IsInf(c.InfeasibleR, 1) {
				return false
			}
			if c.C.Dist(qLoc) > st.rcur+c.CoverRadius() {
				return false
			}
			return s.noPruning2 || c.InfeasibleR < st.rcur+c.CoverRadius()
		})
	}
	return st, nil
}

// anchorSearch binary-searches the smallest radius around anchor cell.C that
// still contains a feasible solution, updating the incumbent Γ/rcur and the
// cell's infeasibility knowledge.
func (s *Searcher) anchorSearch(st *appAccState, cell *quadtree.Cell, q graph.V, k int, alphaP, cover float64) {
	p := cell.C
	// prefix(r) = S members within distance r of p, gathered by a circle
	// range query against the per-query grid over S (output-sensitive; the
	// old path sorted all of S by anchor distance for every anchor).
	prefix := func(r float64) []graph.V {
		s.subBuf = s.sGrid.InCircle(geom.Circle{C: p, R: r}, s.subBuf[:0])
		return s.subBuf
	}

	u := st.rcur + cover
	c0 := s.feasible(prefix(u), q, k)
	if c0 == nil {
		// No feasible solution within the widest useful radius: record for
		// Pruning2 and stop.
		if u > cell.InfeasibleR {
			cell.InfeasibleR = u
		}
		return
	}
	bestMembers := append(s.anchorBuf[:0], c0...)
	defer func() { s.anchorBuf = bestMembers[:0] }()
	l := st.delta / 2 // r_p ≥ ropt ≥ δ/2 (Lemma 3)
	if cell.InfeasibleR > l {
		l = cell.InfeasibleR
	}
	for u-l > alphaP && u-l > 1e-8 {
		if s.canceled() {
			break
		}
		s.stats.BinaryIters++
		r := (l + u) / 2
		if c := s.feasible(prefix(r), q, k); c != nil {
			bestMembers = append(bestMembers[:0], c...)
			// Shrink to the actual farthest member, not just r.
			u = s.maxDistFrom(p, bestMembers)
		} else {
			l = r
			if r > cell.InfeasibleR {
				cell.InfeasibleR = r
			}
		}
	}
	// The community found in the smallest feasible anchor circle; its true
	// MCC may be smaller still.
	if mcc := s.g.MCCOf(bestMembers); mcc.R < st.rcur {
		st.rcur = mcc.R
		st.members = append(st.members[:0], bestMembers...)
	}
}
