package core

import (
	"context"

	"sacsearch/internal/graph"
)

// AppInc is the 2-approximation of Section 4.2 (Algorithm 2). It grows the
// circle O(q, δ) outward one candidate vertex at a time, in ascending
// distance from q, and stops at the first radius δ whose vertex set contains
// a feasible solution Φ. By Lemma 4, the MCC of Φ has radius γ ≤ 2·ropt.
//
// The returned Result carries Φ (Members), γ (MCC.R) and δ (Delta).
func (s *Searcher) AppInc(q graph.V, k int) (*Result, error) {
	return s.AppIncCtx(context.Background(), q, k)
}

// AppIncCtx is AppInc with cancellation: the context is checked once per
// grown prefix, returning ErrCanceled when it fires.
func (s *Searcher) AppIncCtx(ctx context.Context, q graph.V, k int) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}

	// inX marks the growing prefix S; qNbrs counts |S ∩ nb(q)|.
	s.inX.Reset()
	qNbrs := 0
	needQ := s.minQueryNeighbors(k)
	for i, v := range cand.verts {
		if s.canceled() {
			return s.ctxResult(nil, nil)
		}
		s.inX.Mark(v)
		if v != q && s.g.HasEdge(q, v) {
			qNbrs++
		}
		// Cheap necessary conditions before the O(m) feasibility check
		// (Algorithm 2, line 13): q needs enough neighbors in S, and — when
		// the previous prefix was infeasible — any feasible solution must
		// use the newly added vertex v, so v needs enough neighbors too.
		if qNbrs < needQ {
			continue
		}
		if v != q {
			vNbrs := 0
			for _, u := range s.g.Neighbors(v) {
				if s.inX.Has(u) {
					vNbrs++
				}
			}
			if vNbrs < needQ {
				continue
			}
		}
		if c := s.feasible(cand.verts[:i+1], q, k); c != nil {
			return s.finish(s.buildResult(q, k, c, cand.dists[i]), start), nil
		}
	}
	// The full candidate set X is itself feasible (it is q's connected
	// k-structure), so the loop must have returned. Reaching here means the
	// necessary-condition bookkeeping skipped the final check; run it.
	if c := s.feasible(cand.verts, q, k); c != nil {
		return s.finish(s.buildResult(q, k, c, cand.maxDist()), start), nil
	}
	return nil, ErrNoCommunity
}
