package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Context-aware query execution. Every algorithm has a *Ctx variant that
// checks the context at its loop boundaries — each binary-search iteration,
// each circle-enumeration step, each anchor — so an abandoned HTTP client or
// an expired batch deadline stops burning CPU mid-query instead of running a
// multi-second Exact to completion. The plain variants delegate to the *Ctx
// ones with a background context and compile down to the same code path; a
// context with no cancellation costs nothing per iteration.
//
// Cancellation is sticky per query: the first loop boundary that observes
// ctx.Err() latches it, every later boundary short-circuits on the latched
// value without re-querying the context, and the top of the call stack
// converts it into ErrCanceled. Partial per-query state is discarded by the
// next query's begin, so a canceled Searcher is immediately reusable.

// ErrCanceled is returned when a query's context is canceled or its deadline
// expires before the query completes. The underlying context error is
// wrapped, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) also report the cause.
var ErrCanceled = errors.New("core: query canceled")

// beginCtx is begin plus context arming. A context that can never be
// canceled (nil Done channel: Background, TODO, pure value contexts) is not
// stored, so the per-iteration check reduces to one nil comparison. The
// deadline, if any, is captured so canceled can consult the clock directly:
// a saturated GOMAXPROCS=1 process can delay the context's own timer
// goroutine by a full preemption quantum (~10ms), and a compute loop that
// polls Err would inherit that delay.
func (s *Searcher) beginCtx(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		s.qctx = ctx
		if d, ok := ctx.Deadline(); ok {
			s.qdeadline = d
		}
	}
}

// canceled reports whether the query in flight has been canceled, latching
// the context error on first observation. It is the per-loop-boundary check:
// one nil test on the uncancellable path, one latched-error test afterwards.
func (s *Searcher) canceled() bool {
	if s.ctxErr != nil {
		return true
	}
	if s.qctx == nil {
		return false
	}
	if err := s.qctx.Err(); err != nil {
		s.ctxErr = err
		return true
	}
	if !s.qdeadline.IsZero() && time.Now().After(s.qdeadline) {
		s.ctxErr = context.DeadlineExceeded
		return true
	}
	return false
}

// canceledTick is canceled amortized for the innermost enumeration loops
// (Exact's and ExactPlus's triple scans, which run millions of cheap
// iterations): the context is consulted every 16th call and the latched
// result in between, so the check costs one integer op per iteration while
// still bounding post-cancellation work to 16 circle evaluations.
func (s *Searcher) canceledTick() bool {
	if s.ctxErr != nil {
		return true
	}
	if s.qctx == nil {
		return false
	}
	s.ctxTick++
	if s.ctxTick&15 != 0 {
		return false
	}
	return s.canceled()
}

// canceledError wraps the latched context error in ErrCanceled.
func (s *Searcher) canceledError() error {
	return fmt.Errorf("%w: %w", ErrCanceled, s.ctxErr)
}

// ctxResult converts the latched cancellation into the (nil, ErrCanceled)
// return, or passes (res, err) through untouched when the query ran to
// completion.
func (s *Searcher) ctxResult(res *Result, err error) (*Result, error) {
	if s.ctxErr != nil {
		return nil, s.canceledError()
	}
	return res, err
}
